package core

import (
	"strings"
	"testing"
)

func noopAction(ctx *Ctx, self any, act *Activation) error { return nil }

func noopMethod(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }

func TestClassValidation(t *testing.T) {
	factory := Factory(func() any { return new(CredCard) })
	cases := []struct {
		name    string
		opts    []Option
		wantErr string
	}{
		{
			"missing factory",
			[]Option{Method("M", noopMethod)},
			"no Factory",
		},
		{
			"nil factory result",
			[]Option{Factory(func() any { return nil })},
			"Factory returned nil",
		},
		{
			"trigger references undeclared event",
			[]Option{factory, Method("M", noopMethod),
				Trigger("T", "after M", noopAction)},
			"undeclared event",
		},
		{
			"trigger references unknown mask",
			[]Option{factory, Method("M", noopMethod), Events("after M"),
				Trigger("T", "after M & nosuch", noopAction)},
			"unknown mask",
		},
		{
			"event for unknown method",
			[]Option{factory, Events("after Ghost")},
			"unknown method",
		},
		{
			"bad expression syntax",
			[]Option{factory, Method("M", noopMethod), Events("after M"),
				Trigger("T", "after M ||", noopAction)},
			"T",
		},
		{
			"duplicate method",
			[]Option{factory, Method("M", noopMethod), Method("M", noopMethod)},
			"declared twice",
		},
		{
			"duplicate event",
			[]Option{factory, Method("M", noopMethod), Events("after M", "after M")},
			"declared twice",
		},
		{
			"duplicate mask",
			[]Option{factory,
				Mask("m", func(ctx *Ctx, self any, act *Activation) (bool, error) { return true, nil }),
				Mask("m", func(ctx *Ctx, self any, act *Activation) (bool, error) { return true, nil })},
			"declared twice",
		},
		{
			"duplicate trigger",
			[]Option{factory, Method("M", noopMethod), Events("after M"),
				Trigger("T", "after M", noopAction),
				Trigger("T", "after M", noopAction)},
			"declared twice",
		},
		{
			"trigger without action",
			[]Option{factory, Method("M", noopMethod), Events("after M"),
				Trigger("T", "after M", nil)},
			"no action",
		},
		{
			"malformed event decl",
			[]Option{factory, Events("after")},
			"missing name",
		},
		{
			"three-token event decl",
			[]Option{factory, Events("after the fact")},
			"event declaration",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewClass("Bad", c.opts...)
			if err == nil {
				t.Fatalf("NewClass accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestEmptyClassNameRejected(t *testing.T) {
	if _, err := NewClass(""); err == nil {
		t.Fatal("empty class name accepted")
	}
}

func TestMustClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustClass did not panic on invalid class")
		}
	}()
	MustClass("Bad")
}

func TestEventKeys(t *testing.T) {
	c := MustClass("K",
		Factory(func() any { return new(CredCard) }),
		Method("M", noopMethod),
		Events("after M", "before M", "UserEv", "before tcomplete"),
	)
	keys := c.EventKeys()
	want := []string{"after M", "before M", "UserEv", "before tcomplete"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if !c.HasTxnInterest() {
		t.Fatal("txn interest not detected")
	}
}

func TestRegisterSameClassTwice(t *testing.T) {
	db := newTestDB(t)
	cls, _ := db.ClassOf("CredCard")
	if err := db.Register(cls.Def); err != nil {
		t.Fatalf("re-register same definition: %v", err)
	}
	other := MustClass("CredCard",
		Factory(func() any { return new(CredCard) }),
	)
	if err := db.Register(other); err == nil {
		t.Fatal("conflicting definition accepted")
	}
}

func TestClassIDStableAcrossReopen(t *testing.T) {
	// Class IDs live in the catalog; a second Database over the same
	// store must agree (TriggerState.OwnerClass depends on it).
	db := newTestDB(t)
	ref := newCard(t, db, 100, true)
	bc, _ := db.ClassOf("CredCard")

	db2, err := NewDatabase(db.Store())
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Register(newCredCardClass()); err != nil {
		t.Fatal(err)
	}
	bc2, _ := db2.ClassOf("CredCard")
	if bc.ID != bc2.ID {
		t.Fatalf("class ID drifted: %d vs %d", bc.ID, bc2.ID)
	}
	tx := db2.Begin()
	defer tx.Abort()
	if _, err := db2.Get(tx, ref); err != nil {
		t.Fatalf("second database cannot read object: %v", err)
	}
}
