package core

import (
	"errors"
	"strings"
	"testing"

	"ode/internal/txn"
)

func TestTriggersRequireActivation(t *testing.T) {
	// §4.1: "Unless an explicit activation is performed, the trigger will
	// never fire."
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	if err := buy(t, db, ref, 5000); err != nil {
		t.Fatalf("over-limit buy without DenyCredit active: %v", err)
	}
	c := card(t, db, ref)
	if c.CurrBal != 5000 || len(c.BlackMarks) != 0 {
		t.Fatalf("card = %+v", c)
	}
}

func TestDenyCreditAbortsOverLimitPurchase(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	if _, err := db.Activate(tx, ref, "DenyCredit"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Within limit: succeeds.
	if err := buy(t, db, ref, 400); err != nil {
		t.Fatalf("within-limit buy: %v", err)
	}
	if c := card(t, db, ref); c.CurrBal != 400 {
		t.Fatalf("balance = %v", c.CurrBal)
	}

	// Over limit: the trigger black-marks and taborts; the whole
	// transaction — including the purchase and the black mark — rolls
	// back (§5.5: actions of aborted transactions are rolled back).
	if err := buy(t, db, ref, 900); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("over-limit buy commit error = %v, want ErrAborted", err)
	}
	c := card(t, db, ref)
	if c.CurrBal != 400 {
		t.Fatalf("balance after denied purchase = %v, want 400", c.CurrBal)
	}
	if len(c.BlackMarks) != 0 {
		t.Fatalf("black mark survived rollback: %v", c.BlackMarks)
	}

	// Perpetual: still active, denies again.
	if err := buy(t, db, ref, 900); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("second over-limit buy: %v", err)
	}
}

func TestAutoRaiseLimitPaperScenario(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	id, err := db.Activate(tx, ref, "AutoRaiseLimit", 500.0)
	if err != nil {
		t.Fatal(err)
	}
	if id.IsNil() {
		t.Fatal("nil TriggerID")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A small buy does not satisfy MoreCred: paying the bill later must
	// not raise the limit.
	if err := buy(t, db, ref, 100); err != nil {
		t.Fatal(err)
	}
	if err := payBill(t, db, ref, 50); err != nil {
		t.Fatal(err)
	}
	if c := card(t, db, ref); c.CredLim != 1000 {
		t.Fatalf("limit raised prematurely: %v", c.CredLim)
	}

	// A big buy arms the pattern (balance over 80% of limit, good
	// history); intervening user events are ignored; the next PayBill
	// fires RaiseLimit(500).
	if err := buy(t, db, ref, 800); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if err := db.PostUserEvent(tx2, ref, "BigBuy"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := payBill(t, db, ref, 200); err != nil {
		t.Fatal(err)
	}
	c := card(t, db, ref)
	if c.CredLim != 1500 {
		t.Fatalf("limit = %v, want 1500", c.CredLim)
	}

	// Once-only: the activation is gone; a repeat of the pattern must
	// not raise again.
	tx3 := db.Begin()
	active, err := db.ActiveTriggers(tx3, ref)
	if err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	if len(active) != 0 {
		t.Fatalf("once-only trigger still active: %+v", active)
	}
	if err := buy(t, db, ref, 700); err != nil {
		t.Fatal(err)
	}
	if err := payBill(t, db, ref, 100); err != nil {
		t.Fatal(err)
	}
	if c := card(t, db, ref); c.CredLim != 1500 {
		t.Fatalf("deactivated trigger fired again: limit %v", c.CredLim)
	}
}

func TestDeactivate(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	id, err := db.Activate(tx, ref, "DenyCredit")
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	if err := db.Deactivate(tx2, id); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	if err := buy(t, db, ref, 5000); err != nil {
		t.Fatalf("buy after deactivation: %v", err)
	}
	// Deactivating again errors (state gone).
	tx3 := db.Begin()
	defer tx3.Abort()
	if err := db.Deactivate(tx3, id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double deactivate: %v", err)
	}
}

func TestTriggerStateSpansTransactions(t *testing.T) {
	// Global composite events (§7): the FSM state persists in the
	// database, so the pattern can be completed by a different
	// transaction (or application) than the one that armed it.
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	if _, err := db.Activate(tx, ref, "AutoRaiseLimit", 500.0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	if err := buy(t, db, ref, 900); err != nil { // arms (MoreCred true)
		t.Fatal(err)
	}
	// Observe the armed state through the inspect API.
	tx2 := db.Begin()
	active, _ := db.ActiveTriggers(tx2, ref)
	tx2.Commit()
	if len(active) != 1 || active[0].StateNum == 0 {
		t.Fatalf("armed state not persisted: %+v", active)
	}
	// A separate transaction completes the pattern.
	if err := payBill(t, db, ref, 100); err != nil {
		t.Fatal(err)
	}
	if c := card(t, db, ref); c.CredLim != 1500 {
		t.Fatalf("limit = %v", c.CredLim)
	}
}

func TestTriggerStateRollsBackOnAbort(t *testing.T) {
	// §5.5: "a CredCardAutoRaiseLimitStruct's value is rolled back to the
	// value it had at the beginning of the transaction."
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	if _, err := db.Activate(tx, ref, "AutoRaiseLimit", 500.0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// Arm inside a transaction that aborts.
	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Buy", 900.0); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()

	// The pattern must NOT be armed: a PayBill alone fires nothing.
	if err := payBill(t, db, ref, 10); err != nil {
		t.Fatal(err)
	}
	if c := card(t, db, ref); c.CredLim != 1000 {
		t.Fatalf("aborted arming leaked: limit %v", c.CredLim)
	}
}

func TestPerpetualTriggerRefires(t *testing.T) {
	marks := 0
	cls := MustClass("Counter",
		Factory(func() any { return new(CredCard) }),
		Method("Tick", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Tick"),
		Trigger("OnTick", "after Tick",
			func(ctx *Ctx, self any, act *Activation) error { marks++; return nil },
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Counter", &CredCard{})
	if _, err := db.Activate(tx, ref, "OnTick"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	for i := 0; i < 5; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Tick"); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	if marks != 5 {
		t.Fatalf("perpetual trigger fired %d times, want 5", marks)
	}
}

func TestMultipleActivationsFireIndependently(t *testing.T) {
	var got []float64
	cls := MustClass("Multi",
		Factory(func() any { return new(CredCard) }),
		Method("Tick", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Tick"),
		Trigger("OnTick", "after Tick",
			func(ctx *Ctx, self any, act *Activation) error {
				got = append(got, act.ArgFloat(0))
				return nil
			}),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Multi", &CredCard{})
	if _, err := db.Activate(tx, ref, "OnTick", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "OnTick", 2.0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Tick"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if len(got) != 2 {
		t.Fatalf("fired %v, want both activations", got)
	}
	if got[0]+got[1] != 3.0 {
		t.Fatalf("args = %v", got)
	}
}

func TestBeforeEventSeesPreMethodState(t *testing.T) {
	var seen float64 = -1
	cls := MustClass("Before",
		Factory(func() any { return new(CredCard) }),
		Method("Buy", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		Events("before Buy"),
		Trigger("PreBuy", "before Buy",
			func(ctx *Ctx, self any, act *Activation) error {
				seen = self.(*CredCard).CurrBal
				return nil
			},
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Before", &CredCard{CurrBal: 10})
	db.Activate(tx, ref, "PreBuy")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Buy", 90.0); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if seen != 10 {
		t.Fatalf("before-event action saw balance %v, want pre-method 10", seen)
	}
}

func TestUserEventMustBeDeclared(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	defer tx.Abort()
	if err := db.PostUserEvent(tx, ref, "NotDeclared"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("undeclared user event: %v", err)
	}
}

func TestInvokeErrors(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := db.Invoke(tx, ref, "NoSuchMethod"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	if _, err := db.Invoke(tx, RefFromOID(99999), "Buy", 1.0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown object: %v", err)
	}
	if _, err := db.Create(tx, "NoSuchClass", &CredCard{}); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("unknown class: %v", err)
	}
}

func TestMethodErrorSkipsAfterEventAndWriteBack(t *testing.T) {
	fired := false
	boom := errors.New("boom")
	cls := MustClass("Failing",
		Factory(func() any { return new(CredCard) }),
		Method("Fail", func(ctx *Ctx, self any, args []any) (any, error) {
			self.(*CredCard).CurrBal = 999
			return nil, boom
		}),
		Events("after Fail"),
		Trigger("OnFail", "after Fail",
			func(ctx *Ctx, self any, act *Activation) error { fired = true; return nil },
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Failing", &CredCard{})
	db.Activate(tx, ref, "OnFail")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Fail"); !errors.Is(err, boom) {
		t.Fatalf("Invoke error = %v", err)
	}
	tx2.Commit()
	if fired {
		t.Fatal("after event posted despite method error")
	}
	if c := card(t, db, ref); c.CurrBal == 999 {
		t.Fatal("failed method's mutation persisted")
	}
}

func TestReadOnlyMethodNotPersisted(t *testing.T) {
	cls := MustClass("RO",
		Factory(func() any { return new(CredCard) }),
		ReadOnlyMethod("Sneak", func(ctx *Ctx, self any, args []any) (any, error) {
			self.(*CredCard).CurrBal = 777 // misbehaving const method
			return nil, nil
		}),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "RO", &CredCard{CurrBal: 1})
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Sneak"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if c := card(t, db, ref); c.CurrBal != 1 {
		t.Fatalf("read-only method persisted a write: %v", c.CurrBal)
	}
}

func TestActionCascade(t *testing.T) {
	// "a trigger's action can cause another trigger to fire" (§5.4.5).
	var order []string
	cls := MustClass("Cascade",
		Factory(func() any { return new(CredCard) }),
		Method("A", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Method("B", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after A", "after B"),
		Trigger("OnA", "after A",
			func(ctx *Ctx, self any, act *Activation) error {
				order = append(order, "OnA")
				_, err := ctx.Invoke(ctx.Self(), "B")
				return err
			},
			Perpetual()),
		Trigger("OnB", "after B",
			func(ctx *Ctx, self any, act *Activation) error {
				order = append(order, "OnB")
				return nil
			},
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Cascade", &CredCard{})
	db.Activate(tx, ref, "OnA")
	db.Activate(tx, ref, "OnB")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "A"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if strings.Join(order, ",") != "OnA,OnB" {
		t.Fatalf("cascade order = %v", order)
	}
}

func TestFastPathSkipsIndexLookup(t *testing.T) {
	// Design goal 3 / §5.4.5 footnote 3: objects without active triggers
	// skip the index lookup via the header bit.
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	db.ResetStats()
	if err := buy(t, db, ref, 10); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.EventsPosted != 1 || st.FastPathSkips != 1 {
		t.Fatalf("stats = %+v, want 1 posted / 1 fast-path skip", st)
	}

	// With an active trigger the slow path runs.
	tx := db.Begin()
	db.Activate(tx, ref, "DenyCredit")
	tx.Commit()
	db.ResetStats()
	if err := buy(t, db, ref, 10); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.FastPathSkips != 0 || st.MasksEvaluated != 1 {
		t.Fatalf("stats = %+v, want slow path with one mask eval", st)
	}
}

func TestDeleteCleansUpTriggers(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	id, _ := db.Activate(tx, ref, "DenyCredit")
	tx.Commit()

	tx2 := db.Begin()
	if err := db.Delete(tx2, ref); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := db.Begin()
	defer tx3.Abort()
	if _, err := db.Get(tx3, ref); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted object loadable: %v", err)
	}
	// The trigger state object is gone too.
	if err := db.Deactivate(tx3, id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("trigger state survived deletion: %v", err)
	}
}

func TestClusters(t *testing.T) {
	db := newTestDB(t)
	var refs []Ref
	tx := db.Begin()
	for i := 0; i < 3; i++ {
		ref, err := db.Create(tx, "CredCard", &CredCard{CredLim: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.ClusterAdd(tx, "cards", ref); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	tx.Commit()

	tx2 := db.Begin()
	var seen []Ref
	err := db.ClusterScan(tx2, "cards", func(r Ref) error {
		seen = append(seen, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if len(seen) != 3 {
		t.Fatalf("scanned %v", seen)
	}
	for i := range refs {
		if seen[i] != refs[i] {
			t.Fatalf("cluster order: %v vs %v", seen, refs)
		}
	}
}

func TestGetIdentityWithinTransaction(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	defer tx.Abort()
	a, err := db.Get(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Get(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("two loads in one transaction produced distinct instances")
	}
}

func TestClassNameOf(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	defer tx.Abort()
	name, err := db.ClassNameOf(tx, ref)
	if err != nil || name != "CredCard" {
		t.Fatalf("ClassNameOf = %q, %v", name, err)
	}
}

func TestActivationArgsPersistAsJSON(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	if _, err := db.Activate(tx, ref, "AutoRaiseLimit", 123.5); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	defer tx2.Abort()
	active, err := db.ActiveTriggers(tx2, ref)
	if err != nil || len(active) != 1 {
		t.Fatalf("active = %+v, %v", active, err)
	}
	if active[0].Trigger != "AutoRaiseLimit" || active[0].Owner != "CredCard" {
		t.Fatalf("info = %+v", active[0])
	}
	if len(active[0].Args) != 1 || active[0].Args[0].(float64) != 123.5 {
		t.Fatalf("args = %v", active[0].Args)
	}
}

func TestUnknownTriggerActivation(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := db.Activate(tx, ref, "NoSuchTrigger"); !errors.Is(err, ErrUnknownTrigger) {
		t.Fatalf("unknown trigger: %v", err)
	}
}

func TestMaskAtActivationSettles(t *testing.T) {
	// An expression whose first position is a mask evaluates it at
	// activation time (the FSM's start state is a mask state).
	evals := 0
	cls := MustClass("StartMask",
		Factory(func() any { return new(CredCard) }),
		Method("M", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after M"),
		Mask("always", func(ctx *Ctx, self any, act *Activation) (bool, error) {
			evals++
			return true, nil
		}),
		// ^(*after M & always), after M — anchored so the leading
		// star+mask is genuinely first.
		Trigger("T", "^(*after M & always), after M",
			func(ctx *Ctx, self any, act *Activation) error { return nil }),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "StartMask", &CredCard{})
	if _, err := db.Activate(tx, ref, "T"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if evals == 0 {
		t.Fatal("start-state mask not evaluated at activation")
	}
}

func TestOnlyUserEventsPostable(t *testing.T) {
	// §4: member function events are posted by the system; the
	// application may post only user-defined events explicitly.
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	defer tx.Abort()
	if err := db.PostUserEvent(tx, ref, "after Buy"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("posting a member event manually: %v, want ErrUnknownEvent", err)
	}
	if err := db.PostUserEvent(tx, ref, "before tcomplete"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("posting a transaction event manually: %v, want ErrUnknownEvent", err)
	}
	if err := db.PostUserEvent(tx, ref, "BigBuy"); err != nil {
		t.Fatalf("posting a declared user event: %v", err)
	}
}
