package core

import (
	"fmt"
	"time"

	"ode/internal/event"
	"ode/internal/storage"
	"ode/internal/txn"
)

// This file implements the paper's §8 extension: local rules.
//
//	"Including local rules [7] would be useful, since they are low cost
//	 and useful for a variety of tasks. No persistent storage is required
//	 for such triggers, only data structures that can be deallocated at
//	 end-of-transaction. Also, such triggers never require obtaining
//	 write locks for the purpose of processing trigger events. They can
//	 be used internally to efficiently implement constraints."
//
// A local activation reuses the class's declared triggers (same compiled
// FSMs, masks, and actions) but keeps the machine state in the
// transaction's memory: nothing is written to the store, no trigger
// descriptor locks are taken, and the activation vanishes when the
// transaction ends — commit or abort. Coupling modes work as usual
// (an end-coupled local trigger is precisely the paper's "efficiently
// implement constraints" case).

// LocalTriggerID identifies a local activation within its transaction.
type LocalTriggerID struct {
	seq int
	tx  *txnState
}

// IsNil reports an empty LocalTriggerID.
func (l LocalTriggerID) IsNil() bool { return l.tx == nil }

// localActivation is the transient counterpart of a TriggerState.
type localActivation struct {
	seq      int
	bt       *BoundTrigger
	ref      Ref
	stateNum int32
	args     []any
	dead     bool // deactivated or fired (once-only)
}

// ActivateLocal activates a declared trigger as a local rule on ref: it
// observes events for the remainder of the current transaction only. The
// returned LocalTriggerID can cancel it early with DeactivateLocal.
func (db *Database) ActivateLocal(tx *txn.Txn, ref Ref, trigger string, args ...any) (LocalTriggerID, error) {
	st := db.state(tx)
	inst, _, err := st.load(ref, false)
	if err != nil {
		return LocalTriggerID{}, err
	}
	bt, ok := inst.bc.triggersByName[trigger]
	if !ok {
		return LocalTriggerID{}, fmt.Errorf("%w: %s on class %s", ErrUnknownTrigger, trigger, inst.bc.Def.name)
	}
	la := &localActivation{
		seq:      st.localSeq,
		bt:       bt,
		ref:      ref,
		stateNum: bt.Machine.Start,
		args:     normalizeArgs(args),
	}
	st.localSeq++
	// Resolve a mask-at-start cascade exactly as persistent activation
	// does.
	if start := bt.Machine.States[bt.Machine.Start]; start.Mask >= 0 {
		act := &Activation{Trigger: trigger, Args: la.args, Ref: ref}
		settled, _, err := bt.Machine.Settle(bt.Machine.Start, st.maskEval(ref, bt, act))
		if err != nil {
			return LocalTriggerID{}, err
		}
		la.stateNum = settled
	}
	st.localTrigs = append(st.localTrigs, la)
	return LocalTriggerID{seq: la.seq, tx: st}, nil
}

// DeactivateLocal cancels a local activation before the transaction ends.
func (db *Database) DeactivateLocal(tx *txn.Txn, id LocalTriggerID) error {
	st := db.state(tx)
	if id.tx != st {
		return fmt.Errorf("core: local trigger %d belongs to another transaction", id.seq)
	}
	for _, la := range st.localTrigs {
		if la.seq == id.seq && !la.dead {
			la.dead = true
			return nil
		}
	}
	return fmt.Errorf("%w: local trigger %d", ErrNotFound, id.seq)
}

// LocalTriggersOn counts live local activations on ref (tests, tools).
func (db *Database) LocalTriggersOn(tx *txn.Txn, ref Ref) int {
	st := db.state(tx)
	n := 0
	for _, la := range st.localTrigs {
		if !la.dead && la.ref == ref {
			n++
		}
	}
	return n
}

// postLocal advances local activations anchored at ref. It mirrors the
// §5.4.5 algorithm — advance all, then fire — but touches no storage and
// takes no locks.
func (st *txnState) postLocal(ref Ref, ev event.ID, evArgs []any) error {
	if len(st.localTrigs) == 0 {
		return nil
	}
	var fired []*localActivation
	for _, la := range st.localTrigs {
		if la.dead || la.ref != ref {
			continue
		}
		act := &Activation{Trigger: la.bt.Def.Name, Args: la.args, Ref: ref, EventArgs: evArgs}
		next, accepted, err := la.bt.Machine.Advance(la.stateNum, ev, st.maskEval(ref, la.bt, act))
		if err != nil {
			return err
		}
		la.stateNum = next
		if accepted {
			fired = append(fired, la)
		}
	}
	for _, la := range fired {
		if la.bt.Def.Perpetual {
			la.stateNum = la.bt.Machine.Start
		} else {
			la.dead = true
		}
		f := firedRec{
			bt:       la.bt,
			rec:      triggerStateRec{Name: la.bt.Def.Name, Args: la.args, ObjOID: uint64(ref.oid)},
			tsOID:    storage.InvalidOID,
			ref:      ref,
			evArgs:   evArgs,
			detected: time.Now(),
		}
		switch la.bt.Def.Coupling {
		case Immediate:
			st.db.met.firedImmediate.Inc()
			st.db.met.postToFireNs.Observe(time.Since(f.detected).Nanoseconds())
			if err := st.runAction(f); err != nil {
				return err
			}
		case Deferred:
			st.endList = append(st.endList, f)
		case Dependent:
			st.depList = append(st.depList, f)
		case Independent:
			st.indepList = append(st.indepList, f)
		}
	}
	return nil
}
