package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ode/internal/event"
	"ode/internal/fsm"
	"ode/internal/lock"
	"ode/internal/obj"
	"ode/internal/obs"
	"ode/internal/storage"
	"ode/internal/txn"
)

// triggerStateRec is the persistent TriggerState of §5.4.1, serialized as
// JSON so cross-process sessions and the inspect tool can read it:
//
//	persistent struct TriggerState {
//	    unsigned int     triggernum;
//	    persistent void *trigobj;
//	    int              statenum;
//	    persistent metatype *trigobjtype;
//	};
//
// Args carries the trigger parameters captured at activation time (§7:
// Ode stores trigger parameters persistently rather than harvesting
// member-function arguments). They must be JSON-serializable.
type triggerStateRec struct {
	TriggerNum int    `json:"trigger_num"`
	OwnerClass uint32 `json:"owner_class"` // trigobjtype
	ObjOID     uint64 `json:"obj_oid"`     // trigobj
	StateNum   int32  `json:"state_num"`   // statenum
	Name       string `json:"trigger_name"`
	Args       []any  `json:"args,omitempty"`
	// Cause is the cause ID (obs.Cause spelling) of the posting that
	// first moved this FSM off its start state — the origin of the
	// composite pattern currently half-matched. Because the TriggerState
	// is persistent and replicated, a pattern begun on the primary and
	// completed after failover still knows which primary-side event
	// started it. Cleared on the perpetual-trigger reset.
	Cause string `json:"cause,omitempty"`
}

// Activation is the trigger-activation context handed to masks and
// actions: the trigger's identity and the arguments captured when it was
// activated.
type Activation struct {
	// Trigger is the trigger name (e.g. "AutoRaiseLimit").
	Trigger string
	// Args are the activation arguments. JSON round-tripping applies:
	// numbers arrive as float64.
	Args []any
	// Ref is the anchor object.
	Ref Ref
	// ID identifies this activation (usable with Deactivate).
	ID TriggerID
	// EventArgs are the arguments of the member-function invocation that
	// posted the event currently being processed (nil for user and
	// transaction events). This implements the paper's §8 extension:
	// "allowing each member function event to look at the parameters
	// passed to the corresponding member function, at least in masks."
	// Unlike Args, EventArgs are transient — they are visible to masks
	// evaluated during this posting and to the action if the trigger
	// fires on it, but are never stored.
	EventArgs []any
}

// ArgFloat returns argument i as a float64 (0 if absent or non-numeric).
func (a *Activation) ArgFloat(i int) float64 {
	if i < len(a.Args) {
		if f, ok := a.Args[i].(float64); ok {
			return f
		}
	}
	return 0
}

// ArgString returns argument i as a string ("" if absent or non-string).
func (a *Activation) ArgString(i int) string {
	if i < len(a.Args) {
		if s, ok := a.Args[i].(string); ok {
			return s
		}
	}
	return ""
}

// EventArgFloat returns the posting member function's argument i as a
// float64 (0 if absent or non-numeric). See EventArgs.
func (a *Activation) EventArgFloat(i int) float64 {
	if i < len(a.EventArgs) {
		if f, ok := a.EventArgs[i].(float64); ok {
			return f
		}
	}
	return 0
}

// EventArgString returns the posting member function's argument i as a
// string ("" if absent or non-string). See EventArgs.
func (a *Activation) EventArgString(i int) string {
	if i < len(a.EventArgs) {
		if s, ok := a.EventArgs[i].(string); ok {
			return s
		}
	}
	return ""
}

// Ctx is the execution context passed to methods, masks, and actions.
type Ctx struct {
	db  *Database
	tx  *txn.Txn
	ref Ref
}

// DB returns the database.
func (c *Ctx) DB() *Database { return c.db }

// Tx returns the current transaction.
func (c *Ctx) Tx() *txn.Txn { return c.tx }

// Self returns the reference the current method/mask/action is bound to.
func (c *Ctx) Self() Ref { return c.ref }

// Invoke calls a member function through a persistent reference (posting
// its declared events) from inside a method or action.
func (c *Ctx) Invoke(ref Ref, method string, args ...any) (any, error) {
	return c.db.Invoke(c.tx, ref, method, args...)
}

// PostUserEvent posts a declared user-defined event from inside a method
// or action.
func (c *Ctx) PostUserEvent(ref Ref, name string) error {
	return c.db.PostUserEvent(c.tx, ref, name)
}

// TAbort is the O++ tabort statement: it dooms the surrounding
// transaction, which will roll back (firing nothing but !dependent
// actions) when it completes.
func (c *Ctx) TAbort() { c.tx.RequestAbort() }

// Activate activates a trigger from inside a method or action.
func (c *Ctx) Activate(ref Ref, trigger string, args ...any) (TriggerID, error) {
	return c.db.Activate(c.tx, ref, trigger, args...)
}

// Deactivate deactivates a trigger activation.
func (c *Ctx) Deactivate(id TriggerID) error { return c.db.Deactivate(c.tx, id) }

// instance is a decoded object cached per transaction so repeated loads
// within one transaction observe a single identity (as O++ object
// dereferencing does).
type instance struct {
	val any
	bc  *BoundClass
}

// firedRec is one detected trigger occurrence queued for firing.
type firedRec struct {
	bt     *BoundTrigger
	rec    triggerStateRec
	tsOID  storage.OID
	ref    Ref
	evArgs []any // §8 extension: posting event's member-function args

	detected time.Time  // when the FSM accepted, for post→fire latency
	tr       *obs.Trace // pinned firing trace, nil unless the posting was sampled

	// cause/causeParent identify the posting that completed the pattern;
	// a detached system transaction runs under them, so everything its
	// action posts (and its WAL commit record) is chained back here.
	// patCause is the pattern origin (triggerStateRec.Cause) carried
	// onto the fire trace step.
	cause       obs.Cause
	causeParent obs.Cause
	patCause    string
}

// txnState is the per-transaction trigger-engine state: the instance
// cache, the transaction-event object list, and the end/dependent/
// !dependent firing lists of §5.5.
type txnState struct {
	db *Database
	tx *txn.Txn

	instances map[storage.OID]*instance
	txnObjs   []Ref
	txnSeen   map[storage.OID]bool

	endList   []firedRec
	depList   []firedRec
	indepList []firedRec

	// localTrigs are the transaction's local-rule activations (§8
	// extension; see local.go). They are deallocated with this state.
	localTrigs []*localActivation
	localSeq   int

	// ctxCause is the provenance parent for postings made while this
	// transaction runs a trigger action (zero outside actions): an event
	// posted from inside an action is a child of the firing's cause, so
	// cascades form a chain. originCause/originParent record the
	// transaction's first posting, which annotates its WAL commit record.
	ctxCause     obs.Cause
	originCause  obs.Cause
	originParent obs.Cause

	// outbox holds this transaction's captured cross-shard postings;
	// they settle (or vanish) when the transaction resolves. See
	// shard.go.
	outbox []OutboxEntry
}

// state returns (creating on first use) the engine state for tx and wires
// the transaction hooks.
func (db *Database) state(tx *txn.Txn) *txnState {
	db.mu.Lock()
	defer db.mu.Unlock()
	if st, ok := db.txnStates[tx.ID()]; ok {
		return st
	}
	st := &txnState{
		db:        db,
		tx:        tx,
		instances: make(map[storage.OID]*instance),
		txnSeen:   make(map[storage.OID]bool),
	}
	db.txnStates[tx.ID()] = st
	tx.OnBeforeCommit(st.commitProcessing)
	tx.OnBeforeAbort(st.abortProcessing)
	tx.OnAfterCommit(func() {
		db.dropState(tx)
		db.resolveOutbox(st, true)
		db.runDetached(st.depList, db.met.firedDependent)
		db.runDetached(st.indepList, db.met.firedIndependent)
	})
	tx.OnAfterAbort(func() {
		db.dropState(tx)
		db.resolveOutbox(st, false)
		// The commit record this transaction's cause note was destined
		// for will never be written.
		db.clearCommitCause(tx)
		// §5.5: only the !dependent list survives an abort.
		db.runDetached(st.indepList, db.met.firedIndependent)
	})
	return st
}

func (db *Database) dropState(tx *txn.Txn) {
	db.mu.Lock()
	delete(db.txnStates, tx.ID())
	db.mu.Unlock()
}

// Begin starts a transaction on this database.
func (db *Database) Begin() *txn.Txn { return db.tm.Begin() }

// BeginSnapshot starts a lock-free read-only transaction pinned to the
// storage manager's current durable commit LSN. Reads go to the newest
// version at or below that LSN without touching the lock manager, so a
// snapshot reader never waits and can never deadlock; any write attempt
// fails with ErrSnapshotWrite. Fails with ErrNoVersions when the store
// keeps no version chains.
func (db *Database) BeginSnapshot() (*txn.Txn, error) { return db.tm.BeginSnapshot() }

// Query invokes a method in a one-shot transaction, preferring a
// snapshot: the common read-only query (no writes, no persistent
// trigger advances) runs without a single lock-manager call. If the
// method turns out to need write locks (ErrSnapshotWrite) or the store
// keeps no versions, the call transparently reruns in a regular
// transaction.
func (db *Database) Query(ref Ref, method string, args ...any) (any, error) {
	snap, err := db.BeginSnapshot()
	switch {
	case err == nil:
		ret, err := db.Invoke(snap, ref, method, args...)
		if err == nil {
			return ret, snap.Commit()
		}
		_ = snap.Abort()
		if !errors.Is(err, txn.ErrSnapshotWrite) {
			return nil, err
		}
		// The method needs write locks — fall through to a regular txn.
	case errors.Is(err, txn.ErrNoVersions):
		// Unversioned store: the regular transaction is the only path.
	default:
		return nil, err
	}
	tx := db.Begin()
	ret, err := db.Invoke(tx, ref, method, args...)
	if err != nil {
		_ = tx.Abort()
		return nil, err
	}
	return ret, tx.Commit()
}

// load reads an object into the per-transaction cache. forWrite takes the
// exclusive lock (possibly upgrading).
func (st *txnState) load(ref Ref, forWrite bool) (*instance, obj.Header, error) {
	h, payload, err := st.db.om.Load(st.tx, ref.oid, forWrite)
	if err != nil {
		return nil, obj.Header{}, err
	}
	if inst, ok := st.instances[ref.oid]; ok {
		return inst, h, nil
	}
	bc, err := st.db.classByID(h.ClassID)
	if err != nil {
		return nil, h, err
	}
	val := bc.Def.factory()
	if err := decodeInstance(payload, val); err != nil {
		return nil, h, fmt.Errorf("core: decode %s object %v: %w", bc.Def.name, ref, err)
	}
	inst := &instance{val: val, bc: bc}
	st.instances[ref.oid] = inst
	st.noteTxnInterest(ref, bc)
	return inst, h, nil
}

// noteTxnInterest adds ref to the transaction-event object list on first
// access (§5.5: "When an object interested in a transaction event is
// accessed for the first time in a transaction, the object is put on a
// 'transaction event object' list").
func (st *txnState) noteTxnInterest(ref Ref, bc *BoundClass) {
	if !bc.Def.txnInterest || st.txnSeen[ref.oid] {
		return
	}
	st.txnSeen[ref.oid] = true
	st.txnObjs = append(st.txnObjs, ref)
}

// writeBack persists the cached instance's current value, preserving the
// envelope flags (which trigger activation may have changed meanwhile).
func (st *txnState) writeBack(ref Ref, inst *instance) error {
	payload, err := encodeInstance(inst.val)
	if err != nil {
		return fmt.Errorf("core: encode %s object %v: %w", inst.bc.Def.name, ref, err)
	}
	return st.db.om.Update(st.tx, ref.oid, payload)
}

// header re-reads the envelope header (flags may change within the txn).
func (st *txnState) header(ref Ref) (obj.Header, error) {
	if err := st.tx.LockShared(objLockRes(ref.oid)); err != nil {
		return obj.Header{}, err
	}
	img, err := st.tx.Read(ref.oid)
	if err != nil {
		return obj.Header{}, err
	}
	h, _, err := obj.DecodeEnvelope(img)
	return h, err
}

// --- public object operations -------------------------------------------------

// Create allocates a persistent object (pnew, §2). val must be the
// concrete type produced by the class factory.
func (db *Database) Create(tx *txn.Txn, className string, val any) (Ref, error) {
	if err := db.writable(); err != nil {
		return NilRef, err
	}
	bc, ok := db.ClassOf(className)
	if !ok {
		return NilRef, fmt.Errorf("%w: %s", ErrUnknownClass, className)
	}
	payload, err := encodeInstance(val)
	if err != nil {
		return NilRef, err
	}
	var flags uint8
	if bc.Def.txnInterest {
		flags |= obj.FlagTxnEvents
	}
	oid, err := db.om.Create(tx, bc.ID, flags, payload)
	if err != nil {
		return NilRef, err
	}
	ref := Ref{oid}
	st := db.state(tx)
	st.instances[oid] = &instance{val: val, bc: bc}
	st.noteTxnInterest(ref, bc)
	return ref, nil
}

// Get loads an object for reading. Mutating the returned value does NOT
// persist it — mutations go through Invoke, the persistent-pointer path.
func (db *Database) Get(tx *txn.Txn, ref Ref) (any, error) {
	inst, _, err := db.state(tx).load(ref, false)
	if err != nil {
		return nil, err
	}
	return inst.val, nil
}

// ClassNameOf reports the class of a stored object.
func (db *Database) ClassNameOf(tx *txn.Txn, ref Ref) (string, error) {
	inst, _, err := db.state(tx).load(ref, false)
	if err != nil {
		return "", err
	}
	return inst.bc.Def.name, nil
}

// Delete removes an object (pdelete) along with its active trigger
// states and index entries.
func (db *Database) Delete(tx *txn.Txn, ref Ref) error {
	if err := db.writable(); err != nil {
		return err
	}
	st := db.state(tx)
	tsOIDs, err := db.om.TriggersOn(tx, ref.oid)
	if err != nil {
		return err
	}
	for _, tsOID := range tsOIDs {
		if err := db.om.DeleteTriggerState(tx, tsOID); err != nil {
			return err
		}
	}
	delete(st.instances, ref.oid)
	return db.om.Delete(tx, ref.oid)
}

// ClusterAdd places an object in a named cluster (§2).
func (db *Database) ClusterAdd(tx *txn.Txn, cluster string, ref Ref) error {
	if err := db.writable(); err != nil {
		return err
	}
	return db.om.ClusterAdd(tx, cluster, ref.oid)
}

// ClusterRemove removes an object from a cluster.
func (db *Database) ClusterRemove(tx *txn.Txn, cluster string, ref Ref) error {
	if err := db.writable(); err != nil {
		return err
	}
	return db.om.ClusterRemove(tx, cluster, ref.oid)
}

// ClusterScan iterates a cluster in insertion order.
func (db *Database) ClusterScan(tx *txn.Txn, cluster string, fn func(Ref) error) error {
	return db.om.ClusterScan(tx, cluster, func(oid storage.OID) error {
		return fn(Ref{oid})
	})
}

// --- invocation (§5.3) ---------------------------------------------------------

// Invoke calls a member function through a persistent reference — the
// wrapper-function path of §5.3: the declared before event is posted, the
// method runs, mutations are written back, and the declared after event
// is posted. Methods invoked on volatile (non-persistent) Go values never
// enter this path and pay no trigger overhead (design goals 3–4).
func (db *Database) Invoke(tx *txn.Txn, ref Ref, method string, args ...any) (any, error) {
	st := db.state(tx)
	inst, _, err := st.load(ref, false)
	if err != nil {
		return nil, err
	}
	md, ok := inst.bc.Def.methods[method]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrUnknownMethod, inst.bc.Def.name, method)
	}
	if !md.ReadOnly {
		// Mutators are refused on a replica up front; read-only methods
		// proceed (if one posts an event that advances a persistent FSM,
		// the storage gate rejects that write at commit instead).
		if err := db.writable(); err != nil {
			return nil, err
		}
		// Upgrade to the exclusive lock before running the mutator.
		if _, _, err := st.load(ref, true); err != nil {
			return nil, err
		}
	}
	me := inst.bc.methodEvents[method]
	if me.before != event.None {
		if err := st.post(ref, me.before, args); err != nil {
			return nil, err
		}
	}
	ctx := &Ctx{db: db, tx: tx, ref: ref}
	ret, err := md.Fn(ctx, inst.val, args)
	if err != nil {
		return ret, err
	}
	if !md.ReadOnly {
		if err := st.writeBack(ref, inst); err != nil {
			return ret, err
		}
	}
	if me.after != event.None {
		if err := st.post(ref, me.after, args); err != nil {
			return ret, err
		}
	}
	return ret, nil
}

// PostUserEvent posts a declared user-defined event to an object (§4:
// "user-defined events must be explicitly posted by the application").
// On a sharded database, a posting addressed to an object another
// shard owns is captured into the transactional outbox instead — the
// check runs before the load, which would fail here (the object's
// image lives on the owner). See shard.go.
func (db *Database) PostUserEvent(tx *txn.Txn, ref Ref, name string) error {
	if sh := db.shardSt.Load(); sh != nil && !sh.isLocal(uint64(ref.oid)) {
		if err := db.writable(); err != nil {
			return err
		}
		return sh.capture(tx, ref, name)
	}
	return db.postUserEventLocal(tx, ref, name)
}

// postUserEventLocal is the local posting path: the object and its
// trigger states are here. shard ingestion enters through this,
// bypassing the remote-capture check (a misrouted target simply fails
// the load with ErrNotFound).
func (db *Database) postUserEventLocal(tx *txn.Txn, ref Ref, name string) error {
	if err := db.writable(); err != nil {
		return err
	}
	st := db.state(tx)
	inst, _, err := st.load(ref, false)
	if err != nil {
		return err
	}
	// Only user-defined events may be posted by the application; member
	// function events are posted by the system (the wrapper functions)
	// and transaction events by commit/abort processing (§4, §5.5).
	decl, declared := inst.bc.Def.eventKey[name]
	if !declared || decl.decl.Kind != event.KindUser {
		return fmt.Errorf("%w: %q is not a declared user event on class %s", ErrUnknownEvent, name, inst.bc.Def.name)
	}
	id, ok := inst.bc.eventIDs[name]
	if !ok {
		return fmt.Errorf("%w: %q on class %s", ErrUnknownEvent, name, inst.bc.Def.name)
	}
	return st.post(ref, id, nil)
}

// --- activation (§4.1, §5.4.1) --------------------------------------------------

// Activate activates a named trigger on an object with the given
// arguments, returning the TriggerID used to deactivate it. Triggers
// never fire without an explicit activation (§4.1).
func (db *Database) Activate(tx *txn.Txn, ref Ref, trigger string, args ...any) (TriggerID, error) {
	if err := db.writable(); err != nil {
		return TriggerID{}, err
	}
	st := db.state(tx)
	inst, _, err := st.load(ref, false)
	if err != nil {
		return TriggerID{}, err
	}
	bt, ok := inst.bc.triggersByName[trigger]
	if !ok {
		return TriggerID{}, fmt.Errorf("%w: %s on class %s", ErrUnknownTrigger, trigger, inst.bc.Def.name)
	}
	// JSON round-trip the args now so stored and replayed values agree.
	rec := triggerStateRec{
		TriggerNum: bt.Def.num,
		OwnerClass: bt.owner.ID,
		ObjOID:     uint64(ref.oid),
		StateNum:   bt.Machine.Start,
		Name:       trigger,
		Args:       normalizeArgs(args),
	}
	// A mask in first position must be evaluated at activation.
	if start := bt.Machine.States[bt.Machine.Start]; start.Mask >= 0 {
		act := &Activation{Trigger: trigger, Args: rec.Args, Ref: ref}
		settled, _, err := bt.Machine.Settle(bt.Machine.Start, st.maskEval(ref, bt, act))
		if err != nil {
			return TriggerID{}, err
		}
		rec.StateNum = settled
	}
	payload, err := json.Marshal(&rec)
	if err != nil {
		return TriggerID{}, err
	}
	tsOID, err := db.om.CreateTriggerState(tx, payload)
	if err != nil {
		return TriggerID{}, err
	}
	if err := db.om.AddTrigger(tx, ref.oid, tsOID); err != nil {
		return TriggerID{}, err
	}
	return TriggerID{tsOID}, nil
}

// normalizeArgs round-trips activation arguments through JSON so masks
// and actions see the same representation live and after reload.
func normalizeArgs(args []any) []any {
	if len(args) == 0 {
		return nil
	}
	raw, err := json.Marshal(args)
	if err != nil {
		return args
	}
	var out []any
	if json.Unmarshal(raw, &out) != nil {
		return args
	}
	return out
}

// Deactivate removes a trigger activation (§4.1's deactivate(TriggerId)).
func (db *Database) Deactivate(tx *txn.Txn, id TriggerID) error {
	if err := db.writable(); err != nil {
		return err
	}
	raw, err := db.om.LoadTriggerState(tx, id.oid, true)
	if err != nil {
		return err
	}
	var rec triggerStateRec
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("core: corrupt trigger state %v: %w", id, err)
	}
	if err := db.om.RemoveTrigger(tx, storage.OID(rec.ObjOID), id.oid); err != nil {
		return err
	}
	return db.om.DeleteTriggerState(tx, id.oid)
}

// ActiveTriggerInfo describes one activation (inspect tool, tests).
type ActiveTriggerInfo struct {
	ID       TriggerID
	Trigger  string
	Owner    string // defining class
	StateNum int32
	Args     []any
}

// ActiveTriggers lists the activations on an object.
func (db *Database) ActiveTriggers(tx *txn.Txn, ref Ref) ([]ActiveTriggerInfo, error) {
	tsOIDs, err := db.om.TriggersOn(tx, ref.oid)
	if err != nil {
		return nil, err
	}
	var out []ActiveTriggerInfo
	for _, tsOID := range tsOIDs {
		raw, err := db.om.LoadTriggerState(tx, tsOID, false)
		if err != nil {
			return nil, err
		}
		var rec triggerStateRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, err
		}
		ownerName := fmt.Sprintf("class#%d", rec.OwnerClass)
		if bc, err := db.classByID(rec.OwnerClass); err == nil {
			ownerName = bc.Def.name
		}
		out = append(out, ActiveTriggerInfo{
			ID:       TriggerID{tsOID},
			Trigger:  rec.Name,
			Owner:    ownerName,
			StateNum: rec.StateNum,
			Args:     rec.Args,
		})
	}
	return out, nil
}

// --- event posting (§5.4.5) ------------------------------------------------------

// maskEval builds the MaskEval closure for one trigger activation: it
// resolves the named predicate on the trigger's defining class and
// evaluates it against the (lazily loaded) object.
func (st *txnState) maskEval(ref Ref, bt *BoundTrigger, act *Activation) func(string) (bool, error) {
	return func(name string) (bool, error) {
		fn, ok := bt.owner.Def.masks[name]
		if !ok {
			return false, fmt.Errorf("core: trigger %s: mask %q not found on class %s", bt.Def.Name, name, bt.owner.Def.name)
		}
		inst, _, err := st.load(ref, false)
		if err != nil {
			return false, err
		}
		st.db.met.masksEvaluated.Inc()
		ctx := &Ctx{db: st.db, tx: st.tx, ref: ref}
		return fn(ctx, inst.val, act)
	}
}

// post implements the PostEvent algorithm of §5.4.5:
//
//  1. The object header's control bit short-circuits objects with no
//     active triggers (footnote 3).
//  2. The trigger index yields all active TriggerStates; each one's
//     defining-class descriptor is found through trigobjtype
//     (footnote 4), its FSM advanced, and any mask cascade resolved.
//  3. Only after every trigger has seen the event do the accepted ones
//     fire (sequentially, in unspecified order — Ode lacks nested
//     transactions, §5.4.5), routed by coupling mode.
func (st *txnState) post(ref Ref, ev event.ID, evArgs []any) error {
	db := st.db
	db.met.eventsPosted.Inc()
	// Causal provenance: every posting gets a cause ID, parented on the
	// firing whose action posted it (zero parent for application
	// postings). The transaction's first posting becomes its origin,
	// annotating the WAL commit record so replicas can attribute their
	// apply. One atomic add when on; nothing when off.
	var cause, parent obs.Cause
	if db.provenance.Load() {
		parent = st.ctxCause
		cause = db.causes.Next()
		if st.originCause.IsZero() {
			st.originCause, st.originParent = cause, parent
			db.noteCommitCause(st.tx, cause, parent)
		}
	}
	// The sampling gate is one atomic load when tracing is off; the trace
	// machinery below only runs for selected postings.
	var tr *obs.Trace
	if db.tracer.Sampled() {
		tr = db.tracer.Start(uint32(ev), db.eventString(ev), uint64(ref.oid))
		tr.SetCause(cause, parent)
		defer db.tracer.Publish(tr)
	}
	// Local rules see every posting, independent of the header fast path
	// (they live in transaction memory, not in the index).
	if err := st.postLocal(ref, ev, evArgs); err != nil {
		return err
	}
	// A snapshot transaction cannot advance persistent trigger state: it
	// holds no locks and writes nothing, so FSM advances would be lost at
	// commit (and the header read below would be the only lock taken).
	// Local rules above have already seen the event; persistent trigger
	// processing is suppressed, and the trace records the pinned LSN.
	if st.tx.IsSnapshot() {
		db.met.snapshotPosts.Inc()
		tr.Add(obs.Step{Kind: obs.StepSnapshot, LSN: st.tx.SnapshotLSN()})
		return nil
	}
	h, err := st.header(ref)
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil // object deleted within this transaction
		}
		return err
	}
	if h.Flags&obj.FlagHasTriggers == 0 {
		db.met.fastPathSkips.Inc()
		return nil
	}
	tsOIDs, err := db.om.TriggersOn(st.tx, ref.oid)
	if err != nil {
		return err
	}
	var fired []firedRec
	for _, tsOID := range tsOIDs {
		raw, err := db.om.LoadTriggerState(st.tx, tsOID, false)
		if errors.Is(err, storage.ErrNotFound) {
			continue // deactivated earlier in this transaction
		}
		if err != nil {
			return err
		}
		var rec triggerStateRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("core: corrupt trigger state %d: %w", tsOID, err)
		}
		// Footnote 4: find the TriggerInfo via the trigger's defining
		// class descriptor.
		ownerBC, err := db.classByID(rec.OwnerClass)
		if err != nil {
			return err
		}
		if rec.TriggerNum >= len(ownerBC.ownTriggers) {
			return fmt.Errorf("core: trigger state %d has trigger_num %d out of range for class %s", tsOID, rec.TriggerNum, ownerBC.Def.name)
		}
		bt := ownerBC.ownTriggers[rec.TriggerNum]
		act := &Activation{Trigger: rec.Name, Args: rec.Args, Ref: ref, ID: TriggerID{tsOID}, EventArgs: evArgs}
		var traceFn fsm.TraceFn
		if tr != nil {
			trigName, evName := rec.Name, tr.Event()
			traceFn = func(from, to int32, mask string, outcome bool) {
				s := obs.Step{Kind: obs.StepTransition, Trigger: trigName, Event: evName, From: from, To: to}
				if mask != "" {
					// §5.1.2: a mask evaluation consumes the True or
					// False pseudo-event.
					s.Kind, s.Mask = obs.StepMask, mask
					if outcome {
						s.Event = "True"
					} else {
						s.Event = "False"
					}
				}
				tr.Add(s)
			}
		}
		advStart := time.Now()
		next, accepted, err := bt.Machine.AdvanceTraced(rec.StateNum, ev, st.maskEval(ref, bt, act), traceFn)
		db.met.fsmAdvanceNs.Observe(time.Since(advStart).Nanoseconds())
		if err != nil {
			return err
		}
		if accepted {
			rec.StateNum = next
			f := firedRec{bt: bt, rec: rec, tsOID: tsOID, ref: ref, evArgs: evArgs, detected: time.Now(),
				cause: cause, causeParent: parent, patCause: rec.Cause}
			if f.patCause == "" {
				// Single-posting pattern (or pre-provenance state): the
				// completing posting is also the origin.
				f.patCause = cause.String()
			}
			if tr != nil {
				tr.Pin() // released when the firing's dispatch path finishes
				f.tr = tr
			}
			fired = append(fired, f)
			continue // state persisted by the disposition below
		}
		if next != rec.StateNum {
			rec.StateNum = next
			if rec.Cause == "" && !cause.IsZero() {
				// First move off the start state: this posting is the
				// origin of the pattern now being matched.
				rec.Cause = cause.String()
			}
			if err := st.saveTriggerState(tsOID, &rec); err != nil {
				return err
			}
			db.met.triggersAdvanced.Inc()
		}
	}

	// Fire after all postings (§5.4.5). Disposition first: perpetual
	// triggers reset to the start state; once-only triggers deactivate —
	// before the action runs, so an action cannot re-trigger its own
	// once-only activation.
	for i := range fired {
		f := &fired[i]
		if f.bt.Def.Perpetual {
			f.rec.StateNum = f.bt.Machine.Start
			f.rec.Cause = "" // the next pattern has its own origin
			if err := st.saveTriggerState(f.tsOID, &f.rec); err != nil {
				return err
			}
		} else {
			if err := db.om.RemoveTrigger(st.tx, ref.oid, f.tsOID); err != nil {
				return err
			}
			if err := db.om.DeleteTriggerState(st.tx, f.tsOID); err != nil {
				return err
			}
		}
		f.tr.Add(obs.Step{Kind: obs.StepFire, Trigger: f.rec.Name, Coupling: f.bt.Def.Coupling.String(), Cause: f.patCause})
		switch f.bt.Def.Coupling {
		case Immediate:
			db.met.firedImmediate.Inc()
			db.met.postToFireNs.Observe(time.Since(f.detected).Nanoseconds())
			err := st.runAction(*f)
			f.tr.Done()
			if err != nil {
				return err
			}
		case Deferred:
			st.endList = append(st.endList, *f)
		case Dependent:
			st.depList = append(st.depList, *f)
		case Independent:
			st.indepList = append(st.indepList, *f)
		}
	}
	return nil
}

func (st *txnState) saveTriggerState(tsOID storage.OID, rec *triggerStateRec) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	// The exclusive lock here is the §6 read-to-write amplification.
	return st.db.om.UpdateTriggerState(st.tx, tsOID, payload)
}

// runAction executes a trigger action inside the current transaction
// (immediate and end coupling). The anchor object is written back only if
// the action actually mutated it, so no-op and read-only actions do not
// escalate to write locks (this matters for §8 local rules, whose event
// processing must stay lock-free on the write side).
func (st *txnState) runAction(f firedRec) error {
	inst, _, err := st.load(f.ref, false)
	if errors.Is(err, storage.ErrNotFound) {
		return nil // anchor object deleted; nothing to run against
	}
	if err != nil {
		return err
	}
	before, err := encodeInstance(inst.val)
	if err != nil {
		return err
	}
	ctx := &Ctx{db: st.db, tx: st.tx, ref: f.ref}
	act := &Activation{Trigger: f.rec.Name, Args: f.rec.Args, Ref: f.ref, ID: TriggerID{f.tsOID}, EventArgs: f.evArgs}
	f.tr.Add(obs.Step{Kind: obs.StepActionStart, Trigger: f.rec.Name})
	// Postings made by the action are children of this firing's cause.
	prevCause := st.ctxCause
	st.ctxCause = f.cause
	actStart := time.Now()
	err = st.callAction(f, ctx, inst.val, act)
	st.ctxCause = prevCause
	st.db.met.actionNs.Observe(time.Since(actStart).Nanoseconds())
	endStep := obs.Step{Kind: obs.StepActionEnd, Trigger: f.rec.Name}
	if err != nil {
		endStep.Err = err.Error()
	}
	f.tr.Add(endStep)
	if err != nil {
		return fmt.Errorf("core: trigger %s action: %w", f.bt.Def.Name, err)
	}
	after, err := encodeInstance(inst.val)
	if err != nil {
		return err
	}
	if bytes.Equal(before, after) {
		return nil
	}
	if _, _, err := st.load(f.ref, true); err != nil { // upgrade to X
		return err
	}
	return st.db.om.Update(st.tx, f.ref.oid, after)
}

// callAction invokes the trigger action with panic isolation: a
// panicking action is converted into an action error — the surrounding
// transaction aborts (or the detached firing is dropped as permanent),
// but the process survives.
func (st *txnState) callAction(f firedRec, ctx *Ctx, self any, act *Activation) (err error) {
	defer func() {
		if r := recover(); r != nil {
			st.db.met.actionPanics.Inc()
			obs.Flight().Record(obs.IncActionPanic, f.cause, f.causeParent, 0, f.rec.Name)
			obs.DumpFlight("action panic in trigger " + f.rec.Name)
			err = fmt.Errorf("action panicked: %v", r)
		}
	}()
	return f.bt.Def.Action(ctx, self, act)
}

// runDetached executes dependent/!dependent firings, each in its own
// system transaction (§5.5). Failures abort that system transaction
// only — and, because dropping a detected firing on a transient fault
// would make trigger semantics nondeterministic under failure, aborts
// classified as retryable (deadlock victimization, commit failures such
// as a healed WAL fsync error) are retried with capped exponential
// backoff until the firing commits or the retry budget runs out.
func (db *Database) runDetached(list []firedRec, counter *obs.Counter) {
	for _, f := range list {
		db.runDetachedOne(f, counter)
	}
}

func (db *Database) runDetachedOne(f firedRec, counter *obs.Counter) {
	defer f.tr.Done()
	// The wait between detection and detached execution is dominated by
	// the detecting transaction's commit (WAL group-commit wait included).
	f.tr.Add(obs.Step{Kind: obs.StepCommitWait, Trigger: f.rec.Name, WaitNs: time.Since(f.detected).Nanoseconds()})
	db.met.postToFireNs.Observe(time.Since(f.detected).Nanoseconds())
	budget, backoff := db.detachedRetryPolicy()
	for attempt := 0; ; attempt++ {
		sys := db.tm.BeginSystem()
		st := db.state(sys)
		if !f.cause.IsZero() {
			// The detached system transaction runs under the firing's
			// cause: its postings chain here, and its commit record is
			// attributed to the originating event.
			st.ctxCause = f.cause
			st.originCause, st.originParent = f.cause, f.causeParent
			db.noteCommitCause(sys, f.cause, f.causeParent)
		}
		err := st.runAction(f)
		doomed := sys.Doomed()
		if err == nil && !doomed {
			err = sys.Commit()
			if err == nil {
				counter.Inc()
				return
			}
		} else if sys.State() == txn.Active {
			_ = sys.Abort()
		}
		if err == nil && doomed {
			// The action itself requested the abort (tabort): that is a
			// semantic outcome, not a fault — the firing ran to
			// completion and deliberately discarded its effects.
			// Retrying would doom again, deterministically.
			counter.Inc()
			db.met.actionErrors.Inc()
			return
		}
		if attempt < budget && retryableDetached(err) {
			db.met.detachedRetries.Inc()
			obs.Flight().Record(obs.IncDetachedRetry, f.cause, f.causeParent, uint64(attempt+1), f.rec.Name)
			db.met.detachedRetryDelayNs.Observe(backoff.Nanoseconds())
			retryStep := obs.Step{Kind: obs.StepRetry, Trigger: f.rec.Name, WaitNs: backoff.Nanoseconds()}
			if err != nil {
				retryStep.Err = err.Error()
			}
			f.tr.Add(retryStep)
			time.Sleep(backoff)
			if backoff *= 2; backoff > detachedBackoffCap {
				backoff = detachedBackoffCap
			}
			continue
		}
		// Permanent failure (action error, panic) or budget exhausted:
		// the firing is lost and the loss is counted, not silent.
		counter.Inc()
		db.met.actionErrors.Inc()
		db.met.detachedDropped.Inc()
		obs.Flight().Record(obs.IncDetachedDrop, f.cause, f.causeParent, uint64(attempt), f.rec.Name)
		return
	}
}

// retryableDetached classifies a detached system transaction's failure.
// Deadlock victimization and internal aborts (including commit failures
// from a transiently failing store) are worth another attempt; plain
// action errors are deterministic and permanent.
func retryableDetached(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) || errors.Is(err, txn.ErrAborted)
}

// commitProcessing is the §5.5 commit path: drain the end list, post
// before-tcomplete to every object on the transaction-event list, then
// drain end triggers satisfied by those postings.
func (st *txnState) commitProcessing(tx *txn.Txn) error {
	if err := st.drainEndList(); err != nil {
		return err
	}
	tcomplete := st.db.reg.TComplete()
	for i := 0; i < len(st.txnObjs); i++ {
		ref := st.txnObjs[i]
		if err := st.post(ref, tcomplete, nil); err != nil {
			return err
		}
	}
	return st.drainEndList()
}

func (st *txnState) drainEndList() error {
	for len(st.endList) > 0 {
		f := st.endList[0]
		st.endList = st.endList[1:]
		st.db.met.firedDeferred.Inc()
		st.db.met.postToFireNs.Observe(time.Since(f.detected).Nanoseconds())
		err := st.runAction(f)
		f.tr.Done()
		if err != nil {
			return err
		}
	}
	return nil
}

// abortProcessing posts before-tabort (explicit aborts only, §5.5/§6).
// Everything it writes is rolled back moments later; only !dependent
// firings it queues have a lasting effect.
func (st *txnState) abortProcessing(tx *txn.Txn) {
	tabort := st.db.reg.TAbort()
	for i := 0; i < len(st.txnObjs); i++ {
		// Errors during abort processing are swallowed: the transaction
		// is rolling back regardless.
		_ = st.post(st.txnObjs[i], tabort, nil)
	}
}

// objLockRes mirrors the object manager's lock naming for header reads.
func objLockRes(oid storage.OID) lock.Resource {
	return lock.Resource{Space: lock.SpaceObject, ID: uint64(oid)}
}
