package core

import (
	"encoding"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/event"
	"ode/internal/eventexpr"
	"ode/internal/fsm"
	"ode/internal/lock"
	"ode/internal/obj"
	"ode/internal/obs"
	"ode/internal/storage"
	"ode/internal/txn"
)

// Ref is a persistent pointer: the typed handle through which member
// functions must be invoked for events to be posted (§5.3).
type Ref struct {
	oid storage.OID
}

// NilRef is the persistent null pointer.
var NilRef = Ref{}

// OID exposes the underlying object identifier.
func (r Ref) OID() storage.OID { return r.oid }

// IsNil reports whether the reference is the persistent null.
func (r Ref) IsNil() bool { return r.oid == storage.InvalidOID }

func (r Ref) String() string { return fmt.Sprintf("ref(%d)", r.oid) }

// RefFromOID rebuilds a Ref from a raw OID (cross-process handles, the
// inspect tool).
func RefFromOID(oid storage.OID) Ref { return Ref{oid} }

// TriggerIDFromOID rebuilds a TriggerID from a raw OID (handles passed
// across process or network boundaries).
func TriggerIDFromOID(oid storage.OID) TriggerID { return TriggerID{oid} }

// TriggerID identifies one trigger activation; it deactivates the
// activation (§4.1). Its OID is that of the persistent TriggerState.
type TriggerID struct {
	oid storage.OID
}

// IsNil reports an empty TriggerID.
func (t TriggerID) IsNil() bool { return t.oid == storage.InvalidOID }

// OID exposes the TriggerState object's identifier.
func (t TriggerID) OID() storage.OID { return t.oid }

func (t TriggerID) String() string { return fmt.Sprintf("trigger(%d)", t.oid) }

// Errors of the core layer.
var (
	// ErrUnknownClass reports an unregistered class.
	ErrUnknownClass = errors.New("core: class not registered with this database")
	// ErrUnknownMethod reports an Invoke of an undeclared method.
	ErrUnknownMethod = errors.New("core: unknown method")
	// ErrUnknownTrigger reports activation of an undeclared trigger.
	ErrUnknownTrigger = errors.New("core: unknown trigger")
	// ErrUnknownEvent reports posting of an undeclared user event.
	ErrUnknownEvent = errors.New("core: unknown or undeclared event")
	// ErrNotFound re-exports the storage not-found error.
	ErrNotFound = storage.ErrNotFound
	// ErrReadOnly re-exports the storage read-only error: the database
	// is serving as a read replica and the mutation must be sent to the
	// primary instead. The server layer attaches the primary's address
	// as a redirect when it sees this error.
	ErrReadOnly = storage.ErrReadOnly
	// ErrSnapshotWrite re-exports the txn-layer error returned when a
	// snapshot (lock-free read-only) transaction attempts a write or an
	// exclusive lock. Rerun the work in a regular transaction.
	ErrSnapshotWrite = txn.ErrSnapshotWrite
	// ErrNoVersions re-exports the txn-layer error BeginSnapshot returns
	// when the storage manager keeps no version chains.
	ErrNoVersions = txn.ErrNoVersions
)

// BoundTrigger is the run-time TriggerInfo of §5.4.4: the compiled FSM,
// the action, the perpetual flag, and the coupling mode, stored in the
// type descriptor of the defining class.
type BoundTrigger struct {
	Def     *TriggerDef
	Machine *fsm.Machine
	owner   *BoundClass
}

// Name returns the trigger name.
func (bt *BoundTrigger) Name() string { return bt.Def.Name }

// BoundClass is the compiler-generated type descriptor (the paper's
// type_CredCard, §5.2): per-database, per-class run-time machinery. FSMs
// are compiled when the class is registered — the paper's
// "compile an FSM every time" decision (§5.1.3) — and shared by every
// object of the class.
type BoundClass struct {
	Def *Class
	// ID is the catalog class identifier within this database.
	ID uint32
	db *Database

	// eventIDs maps the expression-language spelling to the run-time ID.
	eventIDs map[string]event.ID
	alphabet []event.ID
	// methodEvents precomputes each method's before/after event IDs
	// (event.None when not declared) — the wrapper-function decision of
	// §5.3 made at bind time.
	methodEvents map[string]methodEvents
	// ownTriggers is the §5.4.4 TriggerInfo array, indexed by triggernum.
	ownTriggers []*BoundTrigger
	// triggersByName includes inherited triggers for activation.
	triggersByName map[string]*BoundTrigger
}

type methodEvents struct {
	before, after event.ID
}

// Name returns the class name.
func (bc *BoundClass) Name() string { return bc.Def.name }

// EventID resolves a declared event spelling ("after Buy") to its ID.
func (bc *BoundClass) EventID(key string) (event.ID, bool) {
	id, ok := bc.eventIDs[key]
	return id, ok
}

// TriggerByName finds an activatable trigger (own or inherited).
func (bc *BoundClass) TriggerByName(name string) (*BoundTrigger, bool) {
	bt, ok := bc.triggersByName[name]
	return bt, ok
}

// Stats counts trigger-system activity; the experiments read these. It
// is a snapshot assembled from the database's obs.Registry counters (see
// observe.go and docs/OBSERVABILITY.md), kept as a plain struct so
// existing callers are untouched.
type Stats struct {
	EventsPosted     uint64 // basic events posted to objects
	FastPathSkips    uint64 // postings skipped via the header bit (§5.4.5 fn 3)
	TriggersAdvanced uint64 // FSM advances that changed state (write locks taken)
	MasksEvaluated   uint64
	FiredImmediate   uint64
	FiredDeferred    uint64
	FiredDependent   uint64
	FiredIndependent uint64
	ActionErrors     uint64 // detached actions that ended in an aborted system txn (permanent)
	ActionPanics     uint64 // trigger actions that panicked (recovered, treated as errors)
	DetachedRetries  uint64 // detached system txns re-run after a retryable abort (deadlock, transient commit failure)
	DetachedDropped  uint64 // detached firings lost for good (permanent error or retry budget exhausted)
	SnapshotPosts    uint64 // postings inside snapshot transactions (local rules only; persistent processing suppressed)
}

// Database is one Ode database: a storage manager plus the object and
// trigger run-time. All sessions (and, through a shared store file,
// processes) see the same persistent TriggerStates, which is what makes
// Ode's composite events global (§7).
type Database struct {
	store storage.Manager
	lm    *lock.Manager
	tm    *txn.Manager
	om    *obj.Manager
	reg   *event.Registry

	mu         sync.RWMutex
	byName     map[string]*BoundClass
	byID       map[uint32]*BoundClass
	txnStates  map[txn.ID]*txnState
	detachWait sync.WaitGroup

	// Observability (see observe.go): the metric registry unifying this
	// engine's counters/histograms with the storage, txn, and lock Stats,
	// and the sampled firing-trace recorder.
	obsReg *obs.Registry
	met    *coreMetrics
	tracer *obs.Tracer

	// Detached-execution retry policy (§5.5 self-healing): a dependent
	// or !dependent firing whose system transaction aborts for a
	// transient reason (deadlock victim, commit failure) is retried up
	// to detachedRetries times with capped exponential backoff starting
	// at detachedBackoff. See SetDetachedRetryPolicy.
	detachedRetries int
	detachedBackoff time.Duration

	// readOnly marks the database a read replica: every mutating entry
	// point fails fast with ErrReadOnly. Reads, read-only method
	// invocations, and transient local triggers still work; the
	// replication applier writes beneath this layer, directly through
	// the store. Promotion flips it off.
	readOnly atomic.Bool

	// Causal provenance (see obs.Cause): every posted basic event gets a
	// cause ID from causes, parent-linked when posted from inside a
	// trigger action so cascades form a chain. provenance gates
	// assignment (on by default; E20 measures the cost of leaving it
	// on). cc, when the store supports it, carries each transaction's
	// originating cause into its WAL commit record so replicas — and
	// post-failover composite completions — are attributed to the
	// primary-side event.
	causes     *obs.Causes
	provenance atomic.Bool
	cc         commitCauser

	// shardSt, when set, makes this database one shard of a cluster:
	// postings to remote-owned refs are captured to a transactional
	// outbox instead of applied locally. See shard.go and
	// docs/SHARDING.md.
	shardSt atomic.Pointer[shardState]
}

// commitCauser is the optional storage hook for commit-record cause
// notes; storage/eos implements it.
type commitCauser interface {
	SetCommitCause(txn uint64, self, parent obs.Cause)
	ClearCommitCause(txn uint64)
}

// NewDatabase opens a database over an already-opened storage manager.
// The caller owns the storage manager's lifetime; Close closes it.
func NewDatabase(store storage.Manager) (*Database, error) {
	lm := lock.NewManager()
	tm := txn.NewManager(store, lm)
	om, err := obj.New(tm)
	if err != nil {
		return nil, err
	}
	obsReg, met, tracer := wireObservability(store, tm, lm)
	cc, _ := store.(commitCauser)
	db := &Database{
		store:           store,
		lm:              lm,
		tm:              tm,
		om:              om,
		reg:             event.NewRegistry(),
		byName:          make(map[string]*BoundClass),
		byID:            make(map[uint32]*BoundClass),
		txnStates:       make(map[txn.ID]*txnState),
		detachedRetries: DefaultDetachedRetries,
		detachedBackoff: DefaultDetachedBackoff,
		obsReg:          obsReg,
		met:             met,
		tracer:          tracer,
		causes:          obs.NewCauses(),
		cc:              cc,
	}
	db.provenance.Store(true)
	return db, nil
}

// SetProvenance enables or disables cause-ID assignment (on by
// default; the E20 A/B harness turns it off for the baseline leg).
func (db *Database) SetProvenance(on bool) { db.provenance.Store(on) }

// Provenance reports whether cause IDs are being assigned.
func (db *Database) Provenance() bool { return db.provenance.Load() }

// Causes returns the database's cause-ID source (tests pin the node ID
// through it to make cross-node attribution deterministic).
func (db *Database) Causes() *obs.Causes { return db.causes }

// noteCommitCause attaches (self, parent) to tx's eventual WAL commit
// record, when the store can carry it.
func (db *Database) noteCommitCause(tx *txn.Txn, self, parent obs.Cause) {
	if db.cc != nil {
		db.cc.SetCommitCause(uint64(tx.ID()), self, parent)
	}
}

// clearCommitCause drops a pending note (the transaction aborted, so
// its commit record will never be written).
func (db *Database) clearCommitCause(tx *txn.Txn) {
	if db.cc != nil {
		db.cc.ClearCommitCause(uint64(tx.ID()))
	}
}

// Detached retry defaults: six attempts with 1ms→cap backoff resolve
// every plausible deadlock/transient-commit storm without stalling the
// committing goroutine for more than ~100ms in the worst case.
const (
	DefaultDetachedRetries = 6
	DefaultDetachedBackoff = time.Millisecond
	detachedBackoffCap     = 50 * time.Millisecond
)

// SetDetachedRetryPolicy overrides how many times a detached
// (dependent/!dependent) firing's system transaction is retried after a
// retryable abort, and the initial backoff between attempts (doubled
// per retry, capped). retries = 0 disables retry — every abort is
// final, the pre-healing behavior.
func (db *Database) SetDetachedRetryPolicy(retries int, backoff time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = DefaultDetachedBackoff
	}
	db.detachedRetries = retries
	db.detachedBackoff = backoff
}

func (db *Database) detachedRetryPolicy() (int, time.Duration) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.detachedRetries, db.detachedBackoff
}

// SetReadOnly flips the database's replica gate; see the readOnly field.
func (db *Database) SetReadOnly(ro bool) { db.readOnly.Store(ro) }

// ReadOnly reports whether the database rejects mutations.
func (db *Database) ReadOnly() bool { return db.readOnly.Load() }

// writable is the guard every mutating entry point calls first.
func (db *Database) writable() error {
	if db.readOnly.Load() {
		return ErrReadOnly
	}
	return nil
}

// Store returns the storage manager.
func (db *Database) Store() storage.Manager { return db.store }

// Locks returns the lock manager (experiments read its stats).
func (db *Database) Locks() *lock.Manager { return db.lm }

// Txns returns the transaction manager.
func (db *Database) Txns() *txn.Manager { return db.tm }

// Objects returns the object manager (used by the inspect tool).
func (db *Database) Objects() *obj.Manager { return db.om }

// Registry returns the database's event registry.
func (db *Database) Registry() *event.Registry { return db.reg }

// Stats returns a snapshot of trigger-system counters.
func (db *Database) Stats() Stats {
	m := db.met
	return Stats{
		EventsPosted:     m.eventsPosted.Value(),
		FastPathSkips:    m.fastPathSkips.Value(),
		TriggersAdvanced: m.triggersAdvanced.Value(),
		MasksEvaluated:   m.masksEvaluated.Value(),
		FiredImmediate:   m.firedImmediate.Value(),
		FiredDeferred:    m.firedDeferred.Value(),
		FiredDependent:   m.firedDependent.Value(),
		FiredIndependent: m.firedIndependent.Value(),
		ActionErrors:     m.actionErrors.Value(),
		ActionPanics:     m.actionPanics.Value(),
		DetachedRetries:  m.detachedRetries.Value(),
		DetachedDropped:  m.detachedDropped.Value(),
		SnapshotPosts:    m.snapshotPosts.Value(),
	}
}

// ResetStats zeroes the trigger-engine counters (not the storage, txn,
// or lock counters, which belong to their managers).
func (db *Database) ResetStats() {
	m := db.met
	for _, c := range []*obs.Counter{
		m.eventsPosted, m.fastPathSkips, m.triggersAdvanced, m.masksEvaluated,
		m.firedImmediate, m.firedDeferred, m.firedDependent, m.firedIndependent,
		m.actionErrors, m.actionPanics, m.detachedRetries, m.detachedDropped,
		m.snapshotPosts,
	} {
		c.Reset()
	}
}

// Close waits for in-flight detached trigger transactions and closes the
// storage manager.
func (db *Database) Close() error {
	db.detachWait.Wait()
	return db.store.Close()
}

// Register binds class definitions to this database: catalog IDs are
// assigned, events get their unique run-time integers, and every
// trigger's event expression is compiled to its FSM. Parents must be
// registered before (or along with) derived classes.
func (db *Database) Register(classes ...*Class) error {
	// Sort so parents bind before children when passed together.
	ordered := topoOrder(classes)
	tx := db.tm.Begin()
	pending := make(map[string]*BoundClass)
	var bound []*BoundClass
	for _, c := range ordered {
		bc, err := db.bind(tx, c, pending)
		if err != nil {
			tx.Abort()
			return err
		}
		pending[bc.Def.name] = bc
		bound = append(bound, bc)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	db.mu.Lock()
	for _, bc := range bound {
		db.byName[bc.Def.name] = bc
		db.byID[bc.ID] = bc
	}
	db.mu.Unlock()
	return nil
}

// topoOrder returns classes with parents before children.
func topoOrder(classes []*Class) []*Class {
	var out []*Class
	seen := map[*Class]bool{}
	inSet := map[*Class]bool{}
	for _, c := range classes {
		inSet[c] = true
	}
	var visit func(c *Class)
	visit = func(c *Class) {
		if seen[c] {
			return
		}
		seen[c] = true
		for _, p := range c.parents {
			if inSet[p] {
				visit(p)
			}
		}
		out = append(out, c)
	}
	for _, c := range classes {
		visit(c)
	}
	return out
}

// bind builds the type descriptor for one class. pending holds classes
// bound earlier in the same Register batch.
func (db *Database) bind(tx *txn.Txn, c *Class, pending map[string]*BoundClass) (*BoundClass, error) {
	lookup := func(name string) (*BoundClass, bool) {
		if bc, ok := pending[name]; ok {
			return bc, true
		}
		db.mu.RLock()
		bc, ok := db.byName[name]
		db.mu.RUnlock()
		return bc, ok
	}
	if existing, ok := lookup(c.name); ok {
		if existing.Def != c {
			return nil, fmt.Errorf("core: class %s already registered with a different definition", c.name)
		}
		return existing, nil
	}

	// Parents must be resolvable.
	for _, p := range c.parents {
		if _, ok := lookup(p.name); !ok {
			return nil, fmt.Errorf("core: class %s: parent %s not registered", c.name, p.name)
		}
	}

	id, err := db.om.EnsureClass(tx, c.name)
	if err != nil {
		return nil, err
	}
	bc := &BoundClass{
		Def:            c,
		ID:             id,
		db:             db,
		eventIDs:       make(map[string]event.ID),
		methodEvents:   make(map[string]methodEvents),
		triggersByName: make(map[string]*BoundTrigger),
	}

	// Resolve declared events to run-time IDs; inherited events register
	// under their declaring class so base and derived share IDs (§5.2).
	for _, e := range c.events {
		var id event.ID
		if e.decl.Kind == event.KindTxn {
			id = db.reg.Lookup("", e.decl)
		} else {
			id = db.reg.Register(e.owner.name, e.decl)
		}
		bc.eventIDs[e.key()] = id
		bc.alphabet = append(bc.alphabet, id)
	}
	sort.Slice(bc.alphabet, func(i, j int) bool { return bc.alphabet[i] < bc.alphabet[j] })

	for name := range c.methods {
		me := methodEvents{
			before: bc.eventIDs["before "+name],
			after:  bc.eventIDs["after "+name],
		}
		bc.methodEvents[name] = me
	}

	// Compile FSMs for the class's own triggers; inherited triggers reuse
	// the defining class's machines via its bound descriptor.
	for _, td := range c.ownTriggers {
		m, err := fsm.Compile(td.parsed, fsm.Options{
			Resolve: func(n *eventexpr.Name) (event.ID, error) {
				id, ok := bc.eventIDs[n.String()]
				if !ok || id == event.None {
					return event.None, fmt.Errorf("event %q not declared by class %s", n.String(), c.name)
				}
				return id, nil
			},
			Alphabet: bc.alphabet,
			MaskExists: func(name string) error {
				if _, ok := c.masks[name]; !ok {
					return fmt.Errorf("mask %q not registered on class %s", name, c.name)
				}
				return nil
			},
		})
		if err != nil {
			return nil, fmt.Errorf("core: class %s trigger %s: %w", c.name, td.Name, err)
		}
		bt := &BoundTrigger{Def: td, Machine: m, owner: bc}
		bc.ownTriggers = append(bc.ownTriggers, bt)
		bc.triggersByName[td.Name] = bt
	}
	// Inherit triggers from bound parents.
	for name, td := range c.triggersByName {
		if td.owner == c {
			continue
		}
		ownerBC, ok := lookup(td.owner.name)
		if !ok {
			return nil, fmt.Errorf("core: class %s: trigger %s owner %s not bound", c.name, name, td.owner.name)
		}
		bc.triggersByName[name] = ownerBC.ownTriggers[td.num]
	}
	return bc, nil
}

// ClassOf returns the bound class descriptor by name.
func (db *Database) ClassOf(name string) (*BoundClass, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bc, ok := db.byName[name]
	return bc, ok
}

// classByID resolves a catalog class ID (used when loading objects).
func (db *Database) classByID(id uint32) (*BoundClass, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bc, ok := db.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: class id %d (register the class in this process first)", ErrUnknownClass, id)
	}
	return bc, nil
}

// --- codec -------------------------------------------------------------------

// encodeInstance serializes an object: encoding.BinaryMarshaler when
// implemented, JSON otherwise.
func encodeInstance(v any) ([]byte, error) {
	if bm, ok := v.(encoding.BinaryMarshaler); ok {
		return bm.MarshalBinary()
	}
	return json.Marshal(v)
}

// decodeInstance fills a factory-fresh value from a stored payload.
func decodeInstance(payload []byte, v any) error {
	if bu, ok := v.(encoding.BinaryUnmarshaler); ok {
		return bu.UnmarshalBinary(payload)
	}
	return json.Unmarshal(payload, v)
}
