package core

import (
	"fmt"
	"sort"
	"time"

	"ode/internal/event"
)

// This file implements the paper's §8 extension: timed triggers —
// "Timed triggers, where the passage of time can be used to produce
// events, are also of interest."
//
// A Timers scheduler turns the passage of time into ordinary user-defined
// event postings: Schedule(ref, "Expire", at) posts the declared user
// event "Expire" to ref when the clock passes `at`; Every(...) does so
// periodically. Time is supplied by the caller through AdvanceTo — a
// virtual clock — so trigger behaviour is deterministic and testable; a
// production caller feeds time.Now() on a ticker. Each due posting runs
// in its own transaction (a missed timer must not poison unrelated work),
// so timed firings compose with every coupling mode.

// timerEntry is one scheduled posting.
type timerEntry struct {
	seq    int
	ref    Ref
	event  string
	due    time.Duration
	period time.Duration // 0 = one-shot
	dead   bool
}

// TimerID cancels a scheduled timer.
type TimerID struct {
	seq int
}

// Timers schedules time-driven event postings against one database. It
// is not safe for concurrent use; drive it from one goroutine (or guard
// externally).
type Timers struct {
	db      *Database
	entries []*timerEntry
	now     time.Duration
	nextSeq int
	// Fired counts postings delivered (tests, tools).
	Fired uint64
	// Errors counts postings whose transaction failed.
	Errors uint64
}

// NewTimers returns a timer scheduler with its clock at zero.
func NewTimers(db *Database) *Timers {
	return &Timers{db: db}
}

// Now reports the scheduler's current virtual time.
func (t *Timers) Now() time.Duration { return t.now }

// validate checks that the event is a declared user event on ref's class.
func (t *Timers) validate(ref Ref, userEvent string) error {
	tx := t.db.Begin()
	defer tx.Abort()
	st := t.db.state(tx)
	inst, _, err := st.load(ref, false)
	if err != nil {
		return err
	}
	decl, ok := inst.bc.Def.eventKey[userEvent]
	if !ok || decl.decl.Kind != event.KindUser {
		return fmt.Errorf("%w: timer event %q must be a declared user event on class %s",
			ErrUnknownEvent, userEvent, inst.bc.Def.name)
	}
	return nil
}

// Schedule posts the declared user event once when the clock reaches at.
func (t *Timers) Schedule(ref Ref, userEvent string, at time.Duration) (TimerID, error) {
	if err := t.validate(ref, userEvent); err != nil {
		return TimerID{}, err
	}
	e := &timerEntry{seq: t.nextSeq, ref: ref, event: userEvent, due: at}
	t.nextSeq++
	t.entries = append(t.entries, e)
	return TimerID{seq: e.seq}, nil
}

// Every posts the declared user event periodically, first at start and
// then every period.
func (t *Timers) Every(ref Ref, userEvent string, start, period time.Duration) (TimerID, error) {
	if period <= 0 {
		return TimerID{}, fmt.Errorf("core: timer period must be positive, got %v", period)
	}
	if err := t.validate(ref, userEvent); err != nil {
		return TimerID{}, err
	}
	e := &timerEntry{seq: t.nextSeq, ref: ref, event: userEvent, due: start, period: period}
	t.nextSeq++
	t.entries = append(t.entries, e)
	return TimerID{seq: e.seq}, nil
}

// Cancel removes a scheduled timer.
func (t *Timers) Cancel(id TimerID) error {
	for _, e := range t.entries {
		if e.seq == id.seq && !e.dead {
			e.dead = true
			return nil
		}
	}
	return fmt.Errorf("%w: timer %d", ErrNotFound, id.seq)
}

// Pending reports the number of live timers.
func (t *Timers) Pending() int {
	n := 0
	for _, e := range t.entries {
		if !e.dead {
			n++
		}
	}
	return n
}

// AdvanceTo moves the clock forward and delivers every due posting in
// time order, each in its own transaction. Periodic timers that fall due
// several times within the window fire once per period. Posting errors
// are counted, not fatal: time keeps moving.
func (t *Timers) AdvanceTo(now time.Duration) {
	if now < t.now {
		return // time does not run backwards
	}
	for {
		// Find the earliest due entry at or before now.
		var next *timerEntry
		for _, e := range t.entries {
			if e.dead || e.due > now {
				continue
			}
			if next == nil || e.due < next.due || (e.due == next.due && e.seq < next.seq) {
				next = e
			}
		}
		if next == nil {
			break
		}
		t.fire(next)
		if next.period > 0 {
			next.due += next.period
		} else {
			next.dead = true
		}
	}
	t.now = now
	t.compact()
}

// fire delivers one posting in its own transaction.
func (t *Timers) fire(e *timerEntry) {
	tx := t.db.Begin()
	if err := t.db.PostUserEvent(tx, e.ref, e.event); err != nil {
		tx.Abort()
		t.Errors++
		return
	}
	if err := tx.Commit(); err != nil {
		t.Errors++
		return
	}
	t.Fired++
}

// compact drops dead entries (keeping seq order).
func (t *Timers) compact() {
	live := t.entries[:0]
	for _, e := range t.entries {
		if !e.dead {
			live = append(live, e)
		}
	}
	t.entries = live
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].seq < t.entries[j].seq })
}
