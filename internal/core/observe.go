package core

import (
	"time"

	"ode/internal/event"
	"ode/internal/lock"
	"ode/internal/obs"
	"ode/internal/storage"
	"ode/internal/txn"
)

// coreMetrics holds the trigger engine's hot-path metric handles. The
// counters are the storage behind the public Stats snapshot (the
// pre-existing accessor is kept; the ad-hoc mutex-guarded struct is
// gone), and the histograms time the stations of a firing: detection,
// FSM advance, action execution, durability wait, detached retry
// backoff. All of it lives in one obs.Registry per Database, exposed by
// Observability() and documented in docs/OBSERVABILITY.md.
type coreMetrics struct {
	eventsPosted     *obs.Counter
	fastPathSkips    *obs.Counter
	triggersAdvanced *obs.Counter
	masksEvaluated   *obs.Counter
	firedImmediate   *obs.Counter
	firedDeferred    *obs.Counter
	firedDependent   *obs.Counter
	firedIndependent *obs.Counter
	actionErrors     *obs.Counter
	actionPanics     *obs.Counter
	detachedRetries  *obs.Counter
	detachedDropped  *obs.Counter
	snapshotPosts    *obs.Counter

	postToFireNs         *obs.Histogram
	fsmAdvanceNs         *obs.Histogram
	actionNs             *obs.Histogram
	commitWaitNs         *obs.Histogram
	detachedRetryDelayNs *obs.Histogram
}

func newCoreMetrics(r *obs.Registry) *coreMetrics {
	return &coreMetrics{
		eventsPosted:     r.Counter("core.events_posted", "count", "basic events posted to objects (§5.4.5 PostEvent entries)"),
		fastPathSkips:    r.Counter("core.fast_path_skips", "count", "postings short-circuited by the header bit (§5.4.5 footnote 3)"),
		triggersAdvanced: r.Counter("core.triggers_advanced", "count", "FSM advances that changed persistent state (write locks taken, §6)"),
		masksEvaluated:   r.Counter("core.masks_evaluated", "count", "mask predicate evaluations (§5.1.2 pseudo-event cascades)"),
		firedImmediate:   r.Counter("core.fired_immediate", "count", "firings run inside the detecting transaction (§4.2 immediate)"),
		firedDeferred:    r.Counter("core.fired_deferred", "count", "firings run at commit (§4.2 'end'/deferred coupling)"),
		firedDependent:   r.Counter("core.fired_dependent", "count", "detached firings whose parent committed (§4.2 dependent)"),
		firedIndependent: r.Counter("core.fired_independent", "count", "detached firings independent of parent outcome (§4.2 !dependent)"),
		actionErrors:     r.Counter("core.action_errors", "count", "detached actions that ended in an aborted system transaction (permanent)"),
		actionPanics:     r.Counter("core.action_panics", "count", "trigger actions that panicked (recovered, treated as errors)"),
		detachedRetries:  r.Counter("core.detached_retries", "count", "detached system transactions re-run after a retryable abort"),
		detachedDropped:  r.Counter("core.detached_dropped", "count", "detached firings lost for good (permanent error or retry budget exhausted)"),
		snapshotPosts:    r.Counter("core.snapshot_posts", "count", "events posted inside snapshot transactions: local rules saw them, persistent trigger processing was suppressed"),

		postToFireNs:         r.Histogram("core.post_to_fire_ns", "ns", "event post to action start, per firing (detached firings include the parent's commit wait)"),
		fsmAdvanceNs:         r.Histogram("core.fsm_advance_ns", "ns", "one trigger-state FSM advance including its mask cascade (§5.4.5 steps a–c)"),
		actionNs:             r.Histogram("core.action_ns", "ns", "trigger action body execution"),
		commitWaitNs:         r.Histogram("txn.commit_wait_ns", "ns", "ApplyCommit duration per committed transaction (on eos: the WAL group-commit durability wait)"),
		detachedRetryDelayNs: r.Histogram("core.detached_retry_delay_ns", "ns", "backoff slept before each detached retry (§5.5 self-healing)"),
	}
}

// Help text for the subsumed Stats structs, keyed by Go field name. A
// field without an entry still registers (RegisterStats reflects over
// the struct), it just carries no help line.
var (
	txnStatsHelp = map[string]string{
		"Begun":         "transactions started",
		"Committed":     "transactions committed durably",
		"Aborted":       "transactions rolled back (explicit, doomed, deadlock victim, failed commit)",
		"System":        "system transactions begun for detached trigger processing (§5.5)",
		"Snapshots":     "snapshot (lock-free read-only) transactions begun",
		"SnapshotReads": "object reads served from a pinned snapshot, bypassing the lock manager",
	}
	lockStatsHelp = map[string]string{
		"Acquisitions": "granted lock requests, including re-entrant grants",
		"Waits":        "lock requests that had to block",
		"Upgrades":     "shared-to-exclusive upgrades (the §6 read-to-write amplification)",
		"Deadlocks":    "deadlock victims aborted",
	}
	storageStatsHelp = map[string]string{
		"Reads":        "object reads served by the storage manager",
		"Writes":       "object writes applied",
		"Frees":        "objects freed",
		"PageReads":    "pages fetched from disk (eos only)",
		"PageWrites":   "pages written to disk (eos only)",
		"CacheHits":    "buffer-pool hits (eos only)",
		"LogBytes":     "WAL bytes appended (eos only)",
		"Fsyncs":       "WAL fsyncs issued (eos only)",
		"GroupCommits": "commits made durable; GroupCommits/Fsyncs is the average batch (eos only)",
		"BatchMin":     "smallest commits-per-fsync batch seen (eos only)",
		"BatchMax":     "largest commits-per-fsync batch seen (eos only)",
		"CommitWaitNs": "total time committers waited for durability (eos only)",
		"WALHeals":     "sticky WAL sync errors cleared by self-healing truncation (eos only)",
	}
	versionStatsHelp = map[string]string{
		"VersionsLive":         "versions currently held across all chains",
		"VersionsChains":       "objects with a live version chain",
		"VersionsChainMax":     "length of the longest current chain",
		"VersionsAppended":     "versions appended by commit stamping",
		"VersionsPreimages":    "base pre-images captured on a chain's first stamp",
		"VersionsTrimmed":      "versions reclaimed by version GC",
		"VersionsGcRuns":       "version GC sweeps",
		"VersionsPins":         "distinct snapshot LSNs currently pinned",
		"VersionsOldestPinLsn": "oldest pinned snapshot LSN (0 = none pinned)",
	}
)

// RegisterSubsystems registers the pre-existing per-subsystem Stats
// structs (storage, txn, lock) into r as Func counters, derived by
// reflection so a counter added to any of those structs can never be
// missing from the registry. Exported for tools (ode-inspect) that open
// the managers without a Database.
func RegisterSubsystems(r *obs.Registry, store storage.Manager, tm *txn.Manager, lm *lock.Manager) {
	obs.RegisterStats(r, "storage", storageStatsHelp, func() any { return store.Stats() })
	obs.RegisterStats(r, "txn", txnStatsHelp, func() any { return tm.Stats() })
	obs.RegisterStats(r, "lock", lockStatsHelp, func() any { return lm.Stats() })
	if v, ok := store.(storage.Versioned); ok {
		// The version-store gauges live under the object-manager prefix:
		// they describe what versions of objects snapshot readers can see.
		obs.RegisterStats(r, "obj", versionStatsHelp, func() any { return v.VersionStats() })
		r.Func("txn.snapshot_lsn", "lsn", "commit LSN a snapshot transaction begun now would pin", v.SnapshotLSN)
	}
}

// Observability returns the database's metric registry: the trigger
// engine's counters and latency histograms plus the subsumed storage,
// txn, and lock Stats. See docs/OBSERVABILITY.md for the full reference.
func (db *Database) Observability() *obs.Registry { return db.obsReg }

// Tracer returns the database's firing-trace recorder. Tracing is off by
// default; enable with db.Tracer().SetRate(n) to record one of every n
// postings into the ring buffer.
func (db *Database) Tracer() *obs.Tracer { return db.tracer }

// eventString renders an event ID for trace records ("CredCard::after
// Buy"). Only called on the sampled path.
func (db *Database) eventString(ev event.ID) string {
	if info, ok := db.reg.Info(ev); ok {
		return info.String()
	}
	return "?"
}

// wireObservability builds the registry, metric handles, and tracer for
// a new database and hooks the transaction manager's commit observer.
func wireObservability(store storage.Manager, tm *txn.Manager, lm *lock.Manager) (*obs.Registry, *coreMetrics, *obs.Tracer) {
	reg := obs.NewRegistry()
	met := newCoreMetrics(reg)
	RegisterSubsystems(reg, store, tm, lm)
	tm.SetCommitObserver(func(d time.Duration) { met.commitWaitNs.Observe(d.Nanoseconds()) })
	return reg, met, obs.NewTracer(obs.DefaultTraceCapacity)
}
