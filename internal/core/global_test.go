package core

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"ode/internal/storage/eos"
	"ode/internal/txn"
)

// TestGlobalCompositeAcrossProcesses is experiment E14's correctness half:
// because TriggerStates live in the database (not in transient program
// memory as in Sentinel, §7), a composite event armed by one application
// can be completed by another. We simulate two application processes with
// two Database instances over the same store file, opened sequentially.
func TestGlobalCompositeAcrossProcesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "global.eos")

	// "Application 1": create the card, activate AutoRaiseLimit, arm the
	// pattern with a big Buy, then exit.
	var ref Ref
	{
		store, err := eos.Open(path, eos.Options{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := NewDatabase(store)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Register(newCredCardClass()); err != nil {
			t.Fatal(err)
		}
		tx := db.Begin()
		ref, err = db.Create(tx, "CredCard", &CredCard{CredLim: 1000, GoodHist: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Activate(tx, ref, "AutoRaiseLimit", 500.0); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx2 := db.Begin()
		if _, err := db.Invoke(tx2, ref, "Buy", 900.0); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// "Application 2": a fresh process completes the pattern.
	{
		store, err := eos.Open(path, eos.Options{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := NewDatabase(store)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Register(newCredCardClass()); err != nil {
			t.Fatal(err)
		}
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "PayBill", 100.0); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx2 := db.Begin()
		v, err := db.Get(tx2, ref)
		if err != nil {
			t.Fatal(err)
		}
		c := v.(*CredCard)
		tx2.Commit()
		if c.CredLim != 1500 {
			t.Fatalf("cross-process composite did not fire: limit %v, want 1500", c.CredLim)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentSessions exercises the engine under concurrent
// transactions on disjoint objects (deadlock-free) and shared objects
// (conflicts resolved by the lock manager, victims retried).
func TestConcurrentSessions(t *testing.T) {
	db := newTestDB(t)

	// Disjoint: one card per worker.
	const workers = 8
	refs := make([]Ref, workers)
	for i := range refs {
		refs[i] = newCard(t, db, 1e9, true)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tx := db.Begin()
				if _, err := db.Invoke(tx, refs[w], "Buy", 1.0); err != nil {
					tx.Abort()
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("worker %d commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if c := card(t, db, refs[w]); c.CurrBal != 25 {
			t.Fatalf("worker %d balance = %v, want 25", w, c.CurrBal)
		}
	}

	// Shared object with an active trigger: retry deadlock victims; the
	// final balance must equal the successful increments.
	shared := newCard(t, db, 1e9, true)
	tx := db.Begin()
	if _, err := db.Activate(tx, shared, "DenyCredit"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	var mu sync.Mutex
	committed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for {
					tx := db.Begin()
					_, err := db.Invoke(tx, shared, "Buy", 1.0)
					if err != nil {
						tx.Abort()
						if errors.Is(err, txn.ErrAborted) {
							continue // deadlock victim: retry
						}
						t.Errorf("invoke: %v", err)
						return
					}
					if err := tx.Commit(); err != nil {
						if errors.Is(err, txn.ErrAborted) {
							continue
						}
						t.Errorf("commit: %v", err)
						return
					}
					mu.Lock()
					committed++
					mu.Unlock()
					break
				}
			}
		}()
	}
	wg.Wait()
	if c := card(t, db, shared); int(c.CurrBal) != committed {
		t.Fatalf("balance %v != committed increments %d", c.CurrBal, committed)
	}
	if committed != workers*10 {
		t.Fatalf("committed %d, want %d", committed, workers*10)
	}
}
