package core

import (
	"testing"
)

func TestVersionSnapshotAndList(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)

	// Snapshot at balance 0, then at 100, then at 250.
	var versions []Ref
	amounts := []float64{0, 100, 150}
	for i, amt := range amounts {
		tx := db.Begin()
		if amt > 0 {
			if _, err := db.Invoke(tx, ref, "Buy", amt); err != nil {
				t.Fatal(err)
			}
		}
		v, err := db.CreateVersion(tx, ref)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		_ = i
	}

	tx := db.Begin()
	defer tx.Abort()
	list, err := db.Versions(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("versions = %v", list)
	}
	wantBal := []float64{0, 100, 250}
	for i, v := range list {
		if v != versions[i] {
			t.Fatalf("version order: %v vs %v", list, versions)
		}
		val, err := db.Get(tx, v)
		if err != nil {
			t.Fatal(err)
		}
		if got := val.(*CredCard).CurrBal; got != wantBal[i] {
			t.Fatalf("version %d balance = %v, want %v", i, got, wantBal[i])
		}
	}
}

func TestVersionIsImmutableSnapshot(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	v, err := db.CreateVersion(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the base after snapshotting, same transaction.
	if _, err := db.Invoke(tx, ref, "Buy", 500.0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	defer tx2.Abort()
	val, err := db.Get(tx2, v)
	if err != nil {
		t.Fatal(err)
	}
	if val.(*CredCard).CurrBal != 0 {
		t.Fatalf("snapshot mutated: %v", val.(*CredCard).CurrBal)
	}
}

func TestRollbackToVersion(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	v, _ := db.CreateVersion(tx, ref) // balance 0
	if _, err := db.Invoke(tx, ref, "Buy", 700.0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	if err := db.RollbackToVersion(tx2, ref, v); err != nil {
		t.Fatal(err)
	}
	// In-transaction read sees the restored state.
	val, _ := db.Get(tx2, ref)
	if val.(*CredCard).CurrBal != 0 {
		t.Fatalf("in-txn restored balance = %v", val.(*CredCard).CurrBal)
	}
	tx2.Commit()
	if c := card(t, db, ref); c.CurrBal != 0 {
		t.Fatalf("restored balance = %v, want 0", c.CurrBal)
	}
}

func TestDropVersion(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	v1, _ := db.CreateVersion(tx, ref)
	v2, _ := db.CreateVersion(tx, ref)
	if err := db.DropVersion(tx, ref, v1); err != nil {
		t.Fatal(err)
	}
	list, _ := db.Versions(tx, ref)
	if len(list) != 1 || list[0] != v2 {
		t.Fatalf("versions after drop = %v", list)
	}
	if _, err := db.Get(tx, v1); err == nil {
		t.Fatal("dropped version still readable")
	}
	tx.Commit()
}

func TestVersionsSurviveBaseDeletion(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	v, _ := db.CreateVersion(tx, ref)
	if err := db.Delete(tx, ref); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	defer tx2.Abort()
	if _, err := db.Get(tx2, v); err != nil {
		t.Fatalf("version lost with base: %v", err)
	}
}

func TestVersionMismatchedClassRejected(t *testing.T) {
	other := MustClass("Other",
		Factory(func() any { return new(CredCard) }),
	)
	db := newTestDB(t, newCredCardClass(), other)
	tx := db.Begin()
	defer tx.Abort()
	a, _ := db.Create(tx, "CredCard", &CredCard{})
	b, _ := db.Create(tx, "Other", &CredCard{})
	vb, err := db.CreateVersion(tx, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RollbackToVersion(tx, a, vb); err == nil {
		t.Fatal("cross-class rollback accepted")
	}
}

func TestVersionsRollBackWithTransaction(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	if _, err := db.CreateVersion(tx, ref); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	tx2 := db.Begin()
	defer tx2.Abort()
	list, err := db.Versions(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("aborted snapshot survived: %v", list)
	}
}
