package core

import (
	"errors"
	"testing"
	"time"
)

// timerFixture: an account that expires offers when the "OfferExpired"
// timer event arrives, and accrues interest on periodic "InterestTick"s.
func timerFixture(t *testing.T) (*Database, Ref, *Timers) {
	t.Helper()
	cls := MustClass("TimedAccount",
		Factory(func() any { return new(CredCard) }),
		Method("Accrue", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal *= 1.01
			return nil, nil
		}),
		Events("OfferExpired", "InterestTick", "after Accrue"),
		Trigger("ExpireOffer", "OfferExpired",
			func(ctx *Ctx, self any, act *Activation) error {
				c := self.(*CredCard)
				c.GoodHist = false // the "offer" flag for this test
				return nil
			}),
		Trigger("AccrueOnTick", "InterestTick",
			func(ctx *Ctx, self any, act *Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "Accrue")
				return err
			},
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, err := db.Create(tx, "TimedAccount", &CredCard{CurrBal: 100, GoodHist: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "ExpireOffer"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "AccrueOnTick"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, ref, NewTimers(db)
}

func TestOneShotTimerFiresOnce(t *testing.T) {
	db, ref, tm := timerFixture(t)
	if _, err := tm.Schedule(ref, "OfferExpired", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	tm.AdvanceTo(5 * time.Second)
	if c := card(t, db, ref); !c.GoodHist {
		t.Fatal("timer fired early")
	}
	tm.AdvanceTo(15 * time.Second)
	if c := card(t, db, ref); c.GoodHist {
		t.Fatal("timer did not fire at its due time")
	}
	if tm.Fired != 1 || tm.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", tm.Fired, tm.Pending())
	}
	// Further advances do not re-fire a one-shot.
	tm.AdvanceTo(100 * time.Second)
	if tm.Fired != 1 {
		t.Fatalf("one-shot refired: %d", tm.Fired)
	}
}

func TestPeriodicTimerCatchesUp(t *testing.T) {
	db, ref, tm := timerFixture(t)
	if _, err := tm.Every(ref, "InterestTick", time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	// Jumping 5 seconds delivers 5 ticks (1s,2s,3s,4s,5s).
	tm.AdvanceTo(5 * time.Second)
	if tm.Fired != 5 {
		t.Fatalf("fired %d ticks, want 5", tm.Fired)
	}
	c := card(t, db, ref)
	want := 100 * 1.01 * 1.01 * 1.01 * 1.01 * 1.01
	if diff := c.CurrBal - want; diff > 0.001 || diff < -0.001 {
		t.Fatalf("balance = %v, want %v", c.CurrBal, want)
	}
	if tm.Pending() != 1 {
		t.Fatalf("periodic timer vanished: pending=%d", tm.Pending())
	}
}

func TestTimerOrderingAcrossEntries(t *testing.T) {
	// Two timers due within one window fire in time order — the second
	// completes a sequence pattern only if it really arrives second.
	var order []string
	cls := MustClass("Seq",
		Factory(func() any { return new(CredCard) }),
		Events("A", "B"),
		Trigger("OnA", "A",
			func(ctx *Ctx, self any, act *Activation) error { order = append(order, "A"); return nil },
			Perpetual()),
		Trigger("OnB", "B",
			func(ctx *Ctx, self any, act *Activation) error { order = append(order, "B"); return nil },
			Perpetual()),
		Trigger("ABPattern", "A, B",
			func(ctx *Ctx, self any, act *Activation) error { order = append(order, "A,B!"); return nil },
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Seq", &CredCard{})
	for _, trig := range []string{"OnA", "OnB", "ABPattern"} {
		if _, err := db.Activate(tx, ref, trig); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()

	tm := NewTimers(db)
	// Schedule B before A in call order, but A earlier in time.
	if _, err := tm.Schedule(ref, "B", 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Schedule(ref, "A", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	tm.AdvanceTo(30 * time.Second)
	got := ""
	for _, o := range order {
		got += o + ";"
	}
	if got != "A;B;A,B!;" {
		t.Fatalf("order = %q, want A then B then the composite", got)
	}
}

func TestTimerCancel(t *testing.T) {
	db, ref, tm := timerFixture(t)
	id, err := tm.Schedule(ref, "OfferExpired", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Cancel(id); err != nil {
		t.Fatal(err)
	}
	tm.AdvanceTo(time.Minute)
	if c := card(t, db, ref); !c.GoodHist {
		t.Fatal("cancelled timer fired")
	}
	if err := tm.Cancel(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double cancel: %v", err)
	}
}

func TestTimerValidation(t *testing.T) {
	_, ref, tm := timerFixture(t)
	if _, err := tm.Schedule(ref, "NotDeclared", time.Second); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("undeclared event: %v", err)
	}
	if _, err := tm.Schedule(ref, "after Accrue", time.Second); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("member event as timer: %v", err)
	}
	if _, err := tm.Every(ref, "InterestTick", 0, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestTimerClockMonotonic(t *testing.T) {
	_, ref, tm := timerFixture(t)
	if _, err := tm.Schedule(ref, "OfferExpired", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	tm.AdvanceTo(20 * time.Second)
	fired := tm.Fired
	tm.AdvanceTo(5 * time.Second) // backwards: ignored
	if tm.Now() != 20*time.Second {
		t.Fatalf("clock went backwards: %v", tm.Now())
	}
	if tm.Fired != fired {
		t.Fatal("backwards advance fired timers")
	}
}

func TestTimerErrorCounted(t *testing.T) {
	db, ref, tm := timerFixture(t)
	if _, err := tm.Schedule(ref, "OfferExpired", time.Second); err != nil {
		t.Fatal(err)
	}
	// Delete the object so the posting transaction fails.
	tx := db.Begin()
	if err := db.Delete(tx, ref); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tm.AdvanceTo(time.Minute)
	if tm.Errors != 1 || tm.Fired != 0 {
		t.Fatalf("errors=%d fired=%d", tm.Errors, tm.Fired)
	}
}
