package core

// shard.go: the engine half of horizontal sharding (internal/shard has
// the ring, router, and forwarder; docs/SHARDING.md is the spec).
//
// A sharded Ode partitions user OIDs across N processes. Most
// operations route cleanly — the router sends each request to the
// owner — but one path crosses shards from *inside* a transaction: a
// method or trigger action posting a user event to an object another
// shard owns (the first half of a composite pattern fires on shard A,
// the trigger anchors on shard B). That posting cannot run here — the
// object, its trigger states, and its locks live on the owner. Instead
// it is captured:
//
//  1. Capture. PostUserEvent on a remote ref writes an outbox record
//     object inside the posting transaction. Abort rolls it back;
//     commit makes it durable atomically with the rest of the
//     transaction's effects. Each record carries a fresh cause ID
//     (node, seq) — seq order is the delivery order.
//  2. Forward. The shard.Forwarder drains committed records in seq
//     order to the owner's `shard.ingest` op. A record becomes
//     eligible ("settled") only when no still-open transaction holds a
//     smaller seq, so the per-origin sequence the owner observes is
//     monotonic.
//  3. Ingest. IngestRemoteEvents applies a batch in one transaction:
//     events at or below the persisted per-origin watermark are
//     skipped, the rest are posted locally (under the origin cause, so
//     provenance chains across shards), and the watermark advances in
//     the same transaction. Redelivery after a lost ack re-skips —
//     apply-exactly-once with no sender/receiver agreement protocol
//     beyond the watermark.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ode/internal/obj"
	"ode/internal/obs"
	"ode/internal/storage"
	"ode/internal/txn"
)

// OutboxClassName is the catalog class under which outbox records are
// stored. It is registered by EnableSharding, never by user schemas.
const OutboxClassName = "ode.shard.outbox"

// ErrShardingDisabled reports a sharding entry point called on a
// database that never enabled sharding.
var ErrShardingDisabled = errors.New("core: sharding not enabled on this database")

// RemoteEvent is one captured cross-shard posting: "post Event on
// Target" plus the cause ID minted at capture ((Node, Seq) — Seq is
// the per-origin delivery order) and the capture's provenance parent.
type RemoteEvent struct {
	Seq    uint64 `json:"seq"`
	Node   uint64 `json:"node"`
	Target uint64 `json:"target"`
	Event  string `json:"event"`
	Parent string `json:"parent,omitempty"`
}

// Cause returns the capture's cause ID.
func (e RemoteEvent) Cause() obs.Cause { return obs.Cause{Node: e.Node, Seq: e.Seq} }

// OutboxEntry is a RemoteEvent plus the OID of its persisted record
// (the handle TrimOutbox deletes by).
type OutboxEntry struct {
	RemoteEvent
	OID uint64 `json:"oid"`
}

// shardState is the per-database sharding runtime: the ownership
// predicate, the outbox record class, and the in-memory image of the
// outbox (the store holds the durable truth; this is the index the
// forwarder reads without scanning).
type shardState struct {
	db      *Database
	isLocal func(uint64) bool
	classID uint32

	mu      sync.Mutex
	queue   map[uint64]OutboxEntry // committed records by seq
	pending map[uint64]struct{}    // captured seqs whose txn is still open
	wm      map[uint64]uint64      // per-origin ingest watermarks seen this process
	nudge   chan struct{}

	captured    *obs.Counter
	ingested    *obs.Counter
	ingestDups  *obs.Counter
	ingestDrops *obs.Counter
	trimmed     *obs.Counter
}

// EnableSharding turns this database into one shard of a cluster.
// isLocal is the ownership predicate (the ring's OIDFilter): true for
// OIDs this shard owns (system OIDs are always local). Postings to
// non-local refs are captured to the outbox instead of applied. The
// call registers the outbox class, reloads any outbox records that
// survived a crash, and registers the shard.* metrics. It may be
// called once per database.
func (db *Database) EnableSharding(isLocal func(uint64) bool) error {
	if isLocal == nil {
		return errors.New("core: EnableSharding needs an ownership predicate")
	}
	sh := &shardState{
		db:      db,
		isLocal: isLocal,
		queue:   make(map[uint64]OutboxEntry),
		pending: make(map[uint64]struct{}),
		wm:      make(map[uint64]uint64),
		nudge:   make(chan struct{}, 1),
	}
	if !db.shardSt.CompareAndSwap(nil, sh) {
		return errors.New("core: sharding already enabled")
	}
	tx := db.tm.BeginSystem()
	classID, err := db.om.EnsureClass(tx, OutboxClassName)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	sh.classID = classID
	if err := sh.recover(); err != nil {
		return err
	}
	r := db.obsReg
	sh.captured = r.EnsureCounter("shard.captured", "count", "postings to remote-owned objects captured into the transactional outbox")
	sh.ingested = r.EnsureCounter("shard.ingested", "count", "remote events applied locally by shard.ingest (each is one local posting)")
	sh.ingestDups = r.EnsureCounter("shard.ingest_dups", "count", "remote events skipped as duplicates (at or below the per-origin watermark)")
	sh.ingestDrops = r.EnsureCounter("shard.ingest_dropped", "count", "remote events dropped as invalid (unknown target object or undeclared event)")
	sh.trimmed = r.EnsureCounter("shard.outbox_trimmed", "count", "acked outbox records deleted from the store")
	r.Func("shard.outbox_pending", "records", "outbox records not yet acked (committed queue + open-transaction captures)", func() uint64 {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return uint64(len(sh.queue) + len(sh.pending))
	})
	return nil
}

// ShardingEnabled reports whether EnableSharding has run.
func (db *Database) ShardingEnabled() bool { return db.shardSt.Load() != nil }

// recover reloads committed outbox records after a restart: whatever
// the crash left in the store is exactly what was captured but not yet
// trimmed, i.e. not yet known-delivered.
func (sh *shardState) recover() error {
	return sh.db.store.Iterate(func(oid storage.OID, img []byte) error {
		ev, ok := decodeOutboxImage(img, sh.classID)
		if !ok {
			return nil
		}
		sh.mu.Lock()
		sh.queue[ev.Seq] = OutboxEntry{RemoteEvent: ev, OID: uint64(oid)}
		sh.mu.Unlock()
		// The cause source must never re-issue a seq that is already in
		// flight.
		sh.db.causes.EnsureSeq(ev.Seq)
		return nil
	})
}

// decodeOutboxImage decodes a stored image iff it is an outbox record
// of the given class.
func decodeOutboxImage(img []byte, classID uint32) (RemoteEvent, bool) {
	h, payload, err := obj.DecodeEnvelope(img)
	if err != nil || h.ClassID != classID {
		return RemoteEvent{}, false
	}
	var ev RemoteEvent
	if json.Unmarshal(payload, &ev) != nil {
		return RemoteEvent{}, false
	}
	return ev, true
}

// capture runs inside PostUserEvent when ref is remote-owned: persist
// the event into the outbox as part of tx and track its seq as
// pending until the transaction resolves.
func (sh *shardState) capture(tx *txn.Txn, ref Ref, name string) error {
	db := sh.db
	st := db.state(tx)
	cause := db.causes.Next()
	ev := RemoteEvent{
		Seq:    cause.Seq,
		Node:   cause.Node,
		Target: uint64(ref.oid),
		Event:  name,
		Parent: st.ctxCause.String(),
	}
	payload, err := json.Marshal(&ev)
	if err != nil {
		return err
	}
	oid, err := db.om.Create(tx, sh.classID, 0, payload)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	sh.pending[ev.Seq] = struct{}{}
	sh.mu.Unlock()
	st.outbox = append(st.outbox, OutboxEntry{RemoteEvent: ev, OID: uint64(oid)})
	sh.captured.Inc()
	db.met.eventsPosted.Inc()
	return nil
}

// resolveOutbox settles a transaction's captured events: committed
// captures enter the forwarder's queue, aborted ones vanish (their
// records rolled back with the transaction).
func (db *Database) resolveOutbox(st *txnState, committed bool) {
	if len(st.outbox) == 0 {
		return
	}
	sh := db.shardSt.Load()
	if sh == nil {
		return
	}
	sh.mu.Lock()
	for _, e := range st.outbox {
		delete(sh.pending, e.Seq)
		if committed {
			sh.queue[e.Seq] = e
		}
	}
	sh.mu.Unlock()
	if committed {
		select {
		case sh.nudge <- struct{}{}:
		default:
		}
	}
}

// OutboxNudge returns a channel that receives (capacity 1, coalesced)
// after each commit that added outbox records — the forwarder's
// wakeup. Nil when sharding is disabled.
func (db *Database) OutboxNudge() <-chan struct{} {
	sh := db.shardSt.Load()
	if sh == nil {
		return nil
	}
	return sh.nudge
}

// SettledOutbox returns committed outbox entries in seq order, up to
// (excluding) the smallest seq still held by an open transaction. The
// cutoff is what makes the forwarded stream monotonic per origin: a
// seq below it can never appear later, so the receiver's watermark
// check is sound.
func (db *Database) SettledOutbox() []OutboxEntry {
	sh := db.shardSt.Load()
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	floor := uint64(math.MaxUint64)
	for seq := range sh.pending {
		if seq < floor {
			floor = seq
		}
	}
	out := make([]OutboxEntry, 0, len(sh.queue))
	for seq, e := range sh.queue {
		if seq < floor {
			out = append(out, e)
		}
	}
	sh.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TrimOutbox deletes acked records from the store and the queue. Safe
// to call with already-trimmed seqs (idempotent); an error leaves the
// records for a later retry — redelivery is harmless by design.
func (db *Database) TrimOutbox(seqs []uint64) error {
	sh := db.shardSt.Load()
	if sh == nil {
		return ErrShardingDisabled
	}
	sh.mu.Lock()
	var ents []OutboxEntry
	for _, seq := range seqs {
		if e, ok := sh.queue[seq]; ok {
			ents = append(ents, e)
		}
	}
	sh.mu.Unlock()
	if len(ents) == 0 {
		return nil
	}
	sys := db.tm.BeginSystem()
	for _, e := range ents {
		if err := db.om.Delete(sys, storage.OID(e.OID)); err != nil && !errors.Is(err, storage.ErrNotFound) {
			_ = sys.Abort()
			return err
		}
	}
	if err := sys.Commit(); err != nil {
		return err
	}
	sh.mu.Lock()
	for _, e := range ents {
		delete(sh.queue, e.Seq)
	}
	sh.mu.Unlock()
	for range ents {
		sh.trimmed.Inc()
	}
	return nil
}

// wmName is the catalog name of the per-origin ingest watermark.
func wmName(origin uint64) string { return fmt.Sprintf("shard.wm.%016x", origin) }

// IngestWatermark reads the persisted watermark for origin (0 when
// nothing has ever been ingested from it).
func (db *Database) IngestWatermark(origin uint64) (uint64, error) {
	if db.shardSt.Load() == nil {
		return 0, ErrShardingDisabled
	}
	sys := db.tm.BeginSystem()
	defer sys.Abort()
	raw, ok, err := db.om.ReadNamed(sys, wmName(origin))
	if err != nil {
		return 0, err
	}
	if !ok || len(raw) < 8 {
		return 0, nil
	}
	return binary.LittleEndian.Uint64(raw), nil
}

// IngestRemoteEvents applies a batch of remote events from one origin
// node, exactly once, and returns the origin's watermark after the
// batch (the ack value). Events at or below the watermark are skipped;
// fresh ones are posted locally under their origin cause; the
// watermark advance commits atomically with the postings. Transient
// aborts (deadlock victimization) retry under the detached-firing
// policy, since dropping a delivery would stall the origin's stream.
func (db *Database) IngestRemoteEvents(origin uint64, evs []RemoteEvent) (uint64, error) {
	sh := db.shardSt.Load()
	if sh == nil {
		return 0, ErrShardingDisabled
	}
	if err := db.writable(); err != nil {
		return 0, err
	}
	sorted := make([]RemoteEvent, len(evs))
	copy(sorted, evs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	budget, backoff := db.detachedRetryPolicy()
	for attempt := 0; ; attempt++ {
		wm, err := sh.ingestOnce(origin, sorted)
		if err == nil {
			return wm, nil
		}
		if attempt < budget && retryableDetached(err) {
			db.met.detachedRetries.Inc()
			time.Sleep(backoff)
			if backoff *= 2; backoff > detachedBackoffCap {
				backoff = detachedBackoffCap
			}
			continue
		}
		return 0, err
	}
}

// ingestOnce is one transactional attempt at applying a batch.
func (sh *shardState) ingestOnce(origin uint64, evs []RemoteEvent) (uint64, error) {
	db := sh.db
	name := wmName(origin)
	sys := db.tm.BeginSystem()
	st := db.state(sys)
	var wm uint64
	raw, ok, err := db.om.ReadNamed(sys, name)
	if err != nil {
		_ = sys.Abort()
		return 0, err
	}
	if ok && len(raw) >= 8 {
		wm = binary.LittleEndian.Uint64(raw)
	}
	var applied, dups, drops int
	var hops []RemoteEvent // applied events, reported as ingest_hop incidents post-commit
	for _, ev := range evs {
		if ev.Seq <= wm {
			dups++
			continue
		}
		// The posting runs under the origin cause: masks, actions, and
		// cascades on this shard chain their provenance back to the
		// capture on the origin shard.
		prev := st.ctxCause
		st.ctxCause = ev.Cause()
		err := db.postUserEventLocal(sys, RefFromOID(storage.OID(ev.Target)), ev.Event)
		st.ctxCause = prev
		switch {
		case err == nil:
			applied++
			hops = append(hops, ev)
		case errors.Is(err, ErrNotFound), errors.Is(err, ErrUnknownEvent), errors.Is(err, ErrUnknownClass):
			// Invalid addressing is deterministic: retrying or wedging the
			// stream would not fix it. Drop, count, advance.
			drops++
		default:
			_ = sys.Abort()
			return 0, err
		}
		wm = ev.Seq
	}
	if applied == 0 && drops == 0 {
		// Pure duplicate batch: nothing changed, nothing to persist.
		_ = sys.Abort()
		sh.addIngestCounts(0, dups, 0)
		sh.noteWatermark(origin, wm)
		return wm, nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], wm)
	if err := db.om.WriteNamed(sys, name, buf[:]); err != nil {
		_ = sys.Abort()
		return 0, err
	}
	if err := sys.Commit(); err != nil {
		return 0, err
	}
	sh.addIngestCounts(applied, dups, drops)
	sh.noteWatermark(origin, wm)
	// Incidents only after the commit: a retried attempt must not leave
	// phantom hop records for postings that were rolled back, and the
	// watermark guarantees a committed event is never re-applied.
	for _, ev := range hops {
		parent, _ := obs.ParseCause(ev.Parent)
		obs.Flight().Record(obs.IncIngestHop, ev.Cause(), parent, ev.Seq,
			fmt.Sprintf("applied %s on oid %d from %s", ev.Event, ev.Target, obs.NodeLabel(origin)))
	}
	return wm, nil
}

// noteWatermark caches the latest observed watermark for origin, the
// in-memory image shard.status reports without a store read.
func (sh *shardState) noteWatermark(origin, wm uint64) {
	sh.mu.Lock()
	if wm > sh.wm[origin] {
		sh.wm[origin] = wm
	}
	sh.mu.Unlock()
}

// IngestWatermarks returns the per-origin ingest watermarks observed by
// this process, keyed by the origin's 16-hex node label. Origins this
// process has not ingested from since start are absent (their persisted
// watermarks still gate redelivery; this map is the status view, not
// the source of truth). Nil when sharding is disabled.
func (db *Database) IngestWatermarks() map[string]uint64 {
	sh := db.shardSt.Load()
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[string]uint64, len(sh.wm))
	for origin, wm := range sh.wm {
		out[obs.NodeLabel(origin)] = wm
	}
	return out
}

// OutboxSnapshot returns every committed, not-yet-trimmed outbox entry
// in seq order — the sending half of in-flight cross-shard hops, which
// the cause-chain assembler renders as "hop" events. Unlike
// SettledOutbox it applies no open-transaction cutoff: a chain view
// should show a captured hop as soon as its transaction commits. Nil
// when sharding is disabled.
func (db *Database) OutboxSnapshot() []OutboxEntry {
	sh := db.shardSt.Load()
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	out := make([]OutboxEntry, 0, len(sh.queue))
	for _, e := range sh.queue {
		out = append(out, e)
	}
	sh.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// OutboxDepth returns the number of outbox records not yet acked
// (committed queue + open-transaction captures), the same value the
// shard.outbox_pending metric reports. Zero when sharding is disabled.
func (db *Database) OutboxDepth() uint64 {
	sh := db.shardSt.Load()
	if sh == nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return uint64(len(sh.queue) + len(sh.pending))
}

func (sh *shardState) addIngestCounts(applied, dups, drops int) {
	for i := 0; i < applied; i++ {
		sh.ingested.Inc()
	}
	for i := 0; i < dups; i++ {
		sh.ingestDups.Inc()
	}
	for i := 0; i < drops; i++ {
		sh.ingestDrops.Inc()
	}
}
