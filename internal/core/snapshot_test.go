package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ode/internal/storage"
	"ode/internal/storage/dali"
)

// snapCardClass is the E8/E21 read-amplification fixture: Query is
// read-only, but the QueryPattern trigger's FSM advance turns every
// lock-mode Query posting into a descriptor write. fired counts action
// executions.
func snapCardClass(fired *atomic.Uint64) *Class {
	return MustClass("SnapCard",
		Factory(func() any { return new(CredCard) }),
		ReadOnlyMethod("Query", func(ctx *Ctx, self any, args []any) (any, error) {
			return self.(*CredCard).CurrBal, nil
		}),
		Method("Buy", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		Events("after Query", "after Buy"),
		Trigger("QueryPattern", "after Query, after Query",
			func(ctx *Ctx, self any, act *Activation) error {
				fired.Add(1)
				return nil
			},
			Perpetual()),
	)
}

func newSnapCard(t *testing.T, db *Database) Ref {
	t.Helper()
	tx := db.Begin()
	ref, err := db.Create(tx, "SnapCard", &CredCard{CredLim: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "QueryPattern"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return ref
}

// triggerState returns the FSM state of the single activation on ref.
func triggerState(t *testing.T, db *Database, ref Ref) int32 {
	t.Helper()
	tx := db.Begin()
	defer tx.Abort()
	infos, err := db.ActiveTriggers(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("ActiveTriggers = %d entries, want 1", len(infos))
	}
	return infos[0].StateNum
}

// TestSnapshotInvokeSuppressesTriggerProcessing: a posting inside a
// snapshot transaction reaches local rules only — the persistent FSM
// cannot advance (a snapshot cannot write trigger descriptors), so the
// two-Query pattern never completes no matter how many snapshot Queries
// run, and the engine counts the suppression.
func TestSnapshotInvokeSuppressesTriggerProcessing(t *testing.T) {
	var fired atomic.Uint64
	db := newTestDB(t, snapCardClass(&fired))
	ref := newSnapCard(t, db)
	db.ResetStats()
	before := triggerState(t, db, ref)

	for i := 0; i < 4; i++ {
		snap, err := db.BeginSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Invoke(snap, ref, "Query"); err != nil {
			t.Fatal(err)
		}
		if err := snap.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	if got := triggerState(t, db, ref); got != before {
		t.Fatalf("trigger FSM advanced %d -> %d inside snapshot transactions", before, got)
	}
	if fired.Load() != 0 {
		t.Fatalf("trigger fired %d times from snapshot postings", fired.Load())
	}
	if got := db.Stats().SnapshotPosts; got != 4 {
		t.Fatalf("SnapshotPosts = %d, want 4", got)
	}

	// The same two postings in regular transactions complete the
	// pattern — proving the fixture does fire when not suppressed.
	for i := 0; i < 2; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Query"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if fired.Load() != 1 {
		t.Fatalf("trigger fired %d times after two regular Queries, want 1", fired.Load())
	}
}

// TestSnapshotInvokeMutatorRejected: invoking a mutating method in a
// snapshot transaction fails with ErrSnapshotWrite (the exclusive-lock
// request is refused before any write happens).
func TestSnapshotInvokeMutatorRejected(t *testing.T) {
	var fired atomic.Uint64
	db := newTestDB(t, snapCardClass(&fired))
	ref := newSnapCard(t, db)

	snap, err := db.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Abort()
	if _, err := db.Invoke(snap, ref, "Buy", 10.0); !errors.Is(err, ErrSnapshotWrite) {
		t.Fatalf("Invoke(mutator) on snapshot = %v, want ErrSnapshotWrite", err)
	}
	// The object is untouched.
	tx := db.Begin()
	defer tx.Abort()
	card, err := db.Get(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if card.(*CredCard).CurrBal != 0 {
		t.Fatalf("CurrBal = %v after rejected snapshot Buy", card.(*CredCard).CurrBal)
	}
}

// TestQueryRoutesToSnapshot: the one-shot Query helper serves read-only
// methods from a snapshot transaction and falls back to a regular
// transaction for mutators.
func TestQueryRoutesToSnapshot(t *testing.T) {
	var fired atomic.Uint64
	db := newTestDB(t, snapCardClass(&fired))
	ref := newSnapCard(t, db)

	base := db.Txns().Stats()
	ret, err := db.Query(ref, "Query")
	if err != nil {
		t.Fatal(err)
	}
	if ret.(float64) != 0 {
		t.Fatalf("Query returned %v, want 0", ret)
	}
	st := db.Txns().Stats()
	if st.Snapshots != base.Snapshots+1 {
		t.Fatalf("Snapshots %d -> %d; read-only Query did not use a snapshot", base.Snapshots, st.Snapshots)
	}

	// A mutator through Query: the snapshot attempt fails with
	// ErrSnapshotWrite and the helper reruns it in a regular txn.
	if _, err := db.Query(ref, "Buy", 42.0); err != nil {
		t.Fatal(err)
	}
	if ret, err := db.Query(ref, "Query"); err != nil || ret.(float64) != 42 {
		t.Fatalf("balance after Query(Buy) = %v, %v; want 42", ret, err)
	}
}

// TestQueryUnversionedFallback: over a store without versions the Query
// helper silently degrades to a regular transaction.
func TestQueryUnversionedFallback(t *testing.T) {
	db, err := NewDatabase(unversionedStore{dali.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var fired atomic.Uint64
	if err := db.Register(snapCardClass(&fired)); err != nil {
		t.Fatal(err)
	}
	ref := newSnapCard(t, db)

	if _, err := db.BeginSnapshot(); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("BeginSnapshot = %v, want ErrNoVersions", err)
	}
	ret, err := db.Query(ref, "Query")
	if err != nil || ret.(float64) != 0 {
		t.Fatalf("Query over unversioned store = %v, %v", ret, err)
	}
	if st := db.Txns().Stats(); st.Snapshots != 0 {
		t.Fatalf("Snapshots = %d over unversioned store, want 0", st.Snapshots)
	}
}

// unversionedStore hides the storage.Versioned extension.
type unversionedStore struct{ storage.Manager }

// TestSnapshotReadersUnderWriteLoad is the E8 workload with the MVCC
// remedy, sized to run under -race: snapshot readers against 2PL writers
// with the trigger active. Snapshot readers take no locks, so none of
// them may ever abort (a reader abort would be a deadlock victimization
// or lock timeout — impossible by construction).
func TestSnapshotReadersUnderWriteLoad(t *testing.T) {
	var fired atomic.Uint64
	db := newTestDB(t, snapCardClass(&fired))
	ref := newSnapCard(t, db)

	const readers, writers = 8, 4
	var stop atomic.Bool
	var readerAborts, reads atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap, err := db.BeginSnapshot()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Invoke(snap, ref, "Query"); err != nil {
					snap.Abort()
					readerAborts.Add(1)
					continue
				}
				if err := snap.Commit(); err != nil {
					readerAborts.Add(1)
					continue
				}
				reads.Add(1)
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				tx := db.Begin()
				if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit() // writer deadlocks just retry
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if got := readerAborts.Load(); got != 0 {
		t.Fatalf("%d snapshot reader aborts; lock-free readers cannot be victimized", got)
	}
	if reads.Load() == 0 {
		t.Fatal("no snapshot reads completed")
	}
}
