package core

import (
	"fmt"

	"ode/internal/storage"
	"ode/internal/txn"
)

// This file implements O++'s versioned-object facility, listed among the
// language's capabilities in the paper's §2 overview ("facilities for
// creating persistent and versioned objects"). A version is an immutable
// snapshot of an object's state at the moment CreateVersion ran; the
// snapshot is itself a persistent object of the same class, readable with
// Get and listed through Versions in creation order. Versions are plain
// objects with their own OIDs: events are never posted to them (they have
// no active triggers), and deleting the base object leaves its versions
// readable, as O++ version pointers outlive the working copy.

// versionClusterName names the hidden per-object version list.
func versionClusterName(oid storage.OID) string {
	return fmt.Sprintf("::versions:%d", oid)
}

// CreateVersion snapshots ref's current state (including uncommitted
// changes visible to tx) into a new immutable object and returns its Ref.
func (db *Database) CreateVersion(tx *txn.Txn, ref Ref) (Ref, error) {
	if err := db.writable(); err != nil {
		return NilRef, err
	}
	st := db.state(tx)
	inst, _, err := st.load(ref, false)
	if err != nil {
		return NilRef, err
	}
	payload, err := encodeInstance(inst.val)
	if err != nil {
		return NilRef, err
	}
	oid, err := db.om.Create(tx, inst.bc.ID, 0, payload)
	if err != nil {
		return NilRef, err
	}
	ver := Ref{oid}
	if err := db.om.ClusterAdd(tx, versionClusterName(ref.oid), oid); err != nil {
		return NilRef, err
	}
	return ver, nil
}

// Versions lists ref's snapshots in creation order.
func (db *Database) Versions(tx *txn.Txn, ref Ref) ([]Ref, error) {
	var out []Ref
	err := db.om.ClusterScan(tx, versionClusterName(ref.oid), func(oid storage.OID) error {
		out = append(out, Ref{oid})
		return nil
	})
	return out, err
}

// DropVersion deletes one snapshot and removes it from the version list.
func (db *Database) DropVersion(tx *txn.Txn, base, version Ref) error {
	if err := db.writable(); err != nil {
		return err
	}
	if err := db.om.ClusterRemove(tx, versionClusterName(base.oid), version.oid); err != nil {
		return err
	}
	return db.Delete(tx, version)
}

// RollbackToVersion restores the base object's state from a snapshot (the
// snapshot itself is untouched). The restore is an ordinary update inside
// tx: it takes the exclusive lock and is transactional like any write.
// Note that restoring state this way posts no events — it is a storage
// operation, not a member-function invocation.
func (db *Database) RollbackToVersion(tx *txn.Txn, base, version Ref) error {
	if err := db.writable(); err != nil {
		return err
	}
	st := db.state(tx)
	vinst, _, err := st.load(version, false)
	if err != nil {
		return err
	}
	binst, _, err := st.load(base, true)
	if err != nil {
		return err
	}
	if vinst.bc != binst.bc {
		return fmt.Errorf("core: version %v has class %s, base %v has %s",
			version, vinst.bc.Def.name, base, binst.bc.Def.name)
	}
	payload, err := encodeInstance(vinst.val)
	if err != nil {
		return err
	}
	// Refresh the cached instance so in-transaction readers see the
	// restored state.
	if err := decodeInstance(payload, binst.val); err != nil {
		return err
	}
	return db.om.Update(tx, base.oid, payload)
}
