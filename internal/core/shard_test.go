package core

import (
	"errors"
	"path/filepath"
	"testing"

	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
)

// Doc is the cross-shard test class: a composite `,`-sequence trigger
// ("Flag , Review") anchored on one shard, whose first event arrives
// from another shard through the outbox.
type Doc struct {
	Audits int
}

func newDocClass() *Class {
	return MustClass("Doc",
		Factory(func() any { return new(Doc) }),
		Method("Bump", func(ctx *Ctx, self any, args []any) (any, error) {
			self.(*Doc).Audits++
			return nil, nil
		}),
		Events("Flag", "Review"),
		Trigger("Audit", "Flag , Review",
			func(ctx *Ctx, self any, act *Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "Bump")
				return err
			}),
	)
}

// evenOdd is a deterministic two-shard ownership split for tests that
// do not need the real ring: shard 0 owns even user OIDs, shard 1 odd.
func evenOdd(self uint64) func(uint64) bool {
	return func(oid uint64) bool {
		return oid < 18 || oid%2 == self
	}
}

// newShardPair returns two main-memory databases partitioned even/odd,
// both with Doc registered and sharding enabled.
func newShardPair(t *testing.T) (a, b *Database) {
	t.Helper()
	mk := func(self uint64, node uint64) *Database {
		store := dali.New()
		store.SetOIDFilter(evenOdd(self))
		db, err := NewDatabase(store)
		if err != nil {
			t.Fatal(err)
		}
		db.Causes().SetNode(node)
		if err := db.Register(newDocClass()); err != nil {
			t.Fatal(err)
		}
		if err := db.EnableSharding(evenOdd(self)); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	return mk(0, 0xA), mk(1, 0xB)
}

func TestShardOIDFilterPartitionsAllocation(t *testing.T) {
	a, b := newShardPair(t)
	for i := 0; i < 10; i++ {
		txA, txB := a.Begin(), b.Begin()
		refA, err := a.Create(txA, "Doc", &Doc{})
		if err != nil {
			t.Fatal(err)
		}
		refB, err := b.Create(txB, "Doc", &Doc{})
		if err != nil {
			t.Fatal(err)
		}
		if uint64(refA.OID())%2 != 0 {
			t.Fatalf("shard 0 minted odd oid %v", refA)
		}
		if uint64(refB.OID())%2 != 1 {
			t.Fatalf("shard 1 minted even oid %v", refB)
		}
		if err := txA.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := txB.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// mkDoc creates a Doc on db and returns its ref.
func mkDoc(t *testing.T, db *Database) Ref {
	t.Helper()
	tx := db.Begin()
	ref, err := db.Create(tx, "Doc", &Doc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestShardCaptureAndExactlyOnceIngest(t *testing.T) {
	a, b := newShardPair(t)

	// Anchor on shard B: activate the composite sequence.
	target := mkDoc(t, b)
	tx := b.Begin()
	if _, err := b.Activate(tx, target, "Audit"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Shard A posts the first event of the pattern to B's object: the
	// load would fail here, so the posting must be captured, not applied.
	txA := a.Begin()
	if err := a.PostUserEvent(txA, RefFromOID(target.OID()), "Flag"); err != nil {
		t.Fatalf("remote posting not captured: %v", err)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	out := a.SettledOutbox()
	if len(out) != 1 {
		t.Fatalf("settled outbox has %d entries, want 1", len(out))
	}
	if out[0].Target != uint64(target.OID()) || out[0].Event != "Flag" || out[0].Node != 0xA {
		t.Fatalf("bad outbox entry: %+v", out[0])
	}

	// Deliver — then deliver again (the lost-ack case). The watermark
	// must absorb the duplicate.
	evs := []RemoteEvent{out[0].RemoteEvent}
	wm, err := b.IngestRemoteEvents(0xA, evs)
	if err != nil {
		t.Fatal(err)
	}
	if wm != out[0].Seq {
		t.Fatalf("watermark %d, want %d", wm, out[0].Seq)
	}
	for i := 0; i < 3; i++ {
		wm2, err := b.IngestRemoteEvents(0xA, evs)
		if err != nil {
			t.Fatal(err)
		}
		if wm2 != wm {
			t.Fatalf("redelivery moved watermark %d -> %d", wm, wm2)
		}
	}
	if persisted, err := b.IngestWatermark(0xA); err != nil || persisted != wm {
		t.Fatalf("persisted watermark %d (err %v), want %d", persisted, err, wm)
	}

	// Complete the pattern locally on B; the trigger must fire exactly
	// once even though "Flag" was delivered four times.
	txB := b.Begin()
	if err := b.PostUserEvent(txB, target, "Review"); err != nil {
		t.Fatal(err)
	}
	if err := txB.Commit(); err != nil {
		t.Fatal(err)
	}
	q := b.Begin()
	v, err := b.Get(q, target)
	if err != nil {
		t.Fatal(err)
	}
	audits := v.(*Doc).Audits
	q.Commit()
	if audits != 1 {
		t.Fatalf("composite fired %d times, want exactly 1", audits)
	}

	// Ack: trim the delivered record.
	if err := a.TrimOutbox([]uint64{out[0].Seq}); err != nil {
		t.Fatal(err)
	}
	if left := a.SettledOutbox(); len(left) != 0 {
		t.Fatalf("outbox not trimmed: %d entries left", len(left))
	}
}

func TestShardCaptureRollsBackOnAbort(t *testing.T) {
	a, b := newShardPair(t)
	target := mkDoc(t, b)
	tx := a.Begin()
	if err := a.PostUserEvent(tx, RefFromOID(target.OID()), "Flag"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if out := a.SettledOutbox(); len(out) != 0 {
		t.Fatalf("aborted capture leaked into the outbox: %+v", out)
	}
	// The record object must be gone from the store too.
	if n := a.Observability(); n == nil {
		t.Fatal("registry missing")
	}
}

func TestShardSettledFloorHoldsBackOpenCaptures(t *testing.T) {
	a, b := newShardPair(t)
	target := mkDoc(t, b)

	// tx1 captures first (smaller seq) and stays open; tx2 captures and
	// commits. tx2's record must NOT be settled — if it were forwarded
	// now and tx1 committed later, tx1's smaller seq would arrive below
	// the receiver's watermark and be dropped forever.
	tx1 := a.Begin()
	if err := a.PostUserEvent(tx1, RefFromOID(target.OID()), "Flag"); err != nil {
		t.Fatal(err)
	}
	tx2 := a.Begin()
	if err := a.PostUserEvent(tx2, RefFromOID(target.OID()), "Flag"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if out := a.SettledOutbox(); len(out) != 0 {
		t.Fatalf("outbox settled %d entries past an open capture", len(out))
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	out := a.SettledOutbox()
	if len(out) != 2 {
		t.Fatalf("settled outbox has %d entries after both commits, want 2", len(out))
	}
	if out[0].Seq >= out[1].Seq {
		t.Fatalf("settled outbox out of seq order: %d, %d", out[0].Seq, out[1].Seq)
	}
}

func TestShardIngestDropsInvalid(t *testing.T) {
	_, b := newShardPair(t)
	// Target OID 9999 does not exist on B (but is B-owned: odd).
	wm, err := b.IngestRemoteEvents(0xA, []RemoteEvent{
		{Seq: 7, Node: 0xA, Target: 9999, Event: "Flag"},
	})
	if err != nil {
		t.Fatalf("invalid event must be dropped, not fail the batch: %v", err)
	}
	if wm != 7 {
		t.Fatalf("watermark %d, want 7 (dropped events still advance it)", wm)
	}
	// An undeclared event on a real object drops too.
	target := mkDoc(t, b)
	wm, err = b.IngestRemoteEvents(0xA, []RemoteEvent{
		{Seq: 8, Node: 0xA, Target: uint64(target.OID()), Event: "NoSuchEvent"},
	})
	if err != nil || wm != 8 {
		t.Fatalf("undeclared event: wm %d err %v, want 8 nil", wm, err)
	}
}

func TestShardOutboxSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-a.eos")
	var seq uint64
	var target uint64 = 9991 // odd: remote from shard 0's perspective

	{
		store, err := eos.Open(path, eos.Options{})
		if err != nil {
			t.Fatal(err)
		}
		store.SetOIDFilter(evenOdd(0))
		db, err := NewDatabase(store)
		if err != nil {
			t.Fatal(err)
		}
		db.Causes().SetNode(0xA)
		if err := db.Register(newDocClass()); err != nil {
			t.Fatal(err)
		}
		if err := db.EnableSharding(evenOdd(0)); err != nil {
			t.Fatal(err)
		}
		tx := db.Begin()
		if err := db.PostUserEvent(tx, RefFromOID(storage.OID(target)), "Flag"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		out := db.SettledOutbox()
		if len(out) != 1 {
			t.Fatalf("outbox %d, want 1", len(out))
		}
		seq = out[0].Seq
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// "Reboot": the committed, untrimmed record must reload, and the
	// cause source must not re-issue its seq.
	{
		store, err := eos.Open(path, eos.Options{})
		if err != nil {
			t.Fatal(err)
		}
		store.SetOIDFilter(evenOdd(0))
		db, err := NewDatabase(store)
		if err != nil {
			t.Fatal(err)
		}
		db.Causes().SetNode(0xA)
		if err := db.Register(newDocClass()); err != nil {
			t.Fatal(err)
		}
		if err := db.EnableSharding(evenOdd(0)); err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		out := db.SettledOutbox()
		if len(out) != 1 || out[0].Seq != seq || out[0].Event != "Flag" {
			t.Fatalf("outbox after restart: %+v, want seq %d Flag", out, seq)
		}
		if next := db.Causes().Next(); next.Seq <= seq {
			t.Fatalf("cause seq %d re-issued at or below recovered %d", next.Seq, seq)
		}
		if err := db.TrimOutbox([]uint64{seq}); err != nil {
			t.Fatal(err)
		}
		if left := db.SettledOutbox(); len(left) != 0 {
			t.Fatalf("trim after restart left %d entries", len(left))
		}
	}
}

func TestShardEnableTwiceFails(t *testing.T) {
	db, err := NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.EnableSharding(evenOdd(0)); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableSharding(evenOdd(0)); err == nil {
		t.Fatal("second EnableSharding must fail")
	}
	if _, err := db.IngestRemoteEvents(1, nil); err != nil {
		t.Fatalf("ingest of empty batch: %v", err)
	}
}

func TestShardDisabledErrors(t *testing.T) {
	db, err := NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.IngestRemoteEvents(1, nil); !errors.Is(err, ErrShardingDisabled) {
		t.Fatalf("got %v, want ErrShardingDisabled", err)
	}
	if err := db.TrimOutbox([]uint64{1}); !errors.Is(err, ErrShardingDisabled) {
		t.Fatalf("got %v, want ErrShardingDisabled", err)
	}
}
