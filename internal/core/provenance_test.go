package core

import (
	"testing"

	"ode/internal/obs"
)

// cascadeFixture builds a class where trigger Outer's action invokes
// Mark, whose "after Mark" event fires trigger Inner — a two-hop trigger
// cascade within one transaction.
func cascadeFixture(t *testing.T) (*Database, Ref) {
	t.Helper()
	cls := MustClass("Cascade",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Method("Mark", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.BlackMarks = append(c.BlackMarks, "marked")
			return nil, nil
		}),
		Method("Note", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke", "after Mark"),
		Trigger("Outer", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "Mark")
				return err
			}),
		Trigger("Inner", "after Mark",
			func(ctx *Ctx, self any, act *Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "Note")
				return err
			}),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, err := db.Create(tx, "Cascade", &CredCard{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "Outer"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "Inner"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, ref
}

// TestCascadeProvenanceChain asserts the tentpole invariant inside one
// node: an event posted from within a trigger action carries the firing
// posting's cause as its parent, forming a parent-linked cascade chain.
func TestCascadeProvenanceChain(t *testing.T) {
	db, ref := cascadeFixture(t)
	db.Tracer().SetRate(1) // trace every posting

	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	node := db.Causes().Node()
	recs := db.Tracer().Snapshot()
	var outer, inner []obs.TraceRecord
	for _, r := range recs {
		switch r.Event {
		case "Cascade::after Poke":
			outer = append(outer, r)
		case "Cascade::after Mark":
			inner = append(inner, r)
		}
	}
	if len(outer) != 1 || len(inner) != 1 {
		t.Fatalf("got %d outer and %d inner traces, want exactly 1 each (all: %+v)",
			len(outer), len(inner), recs)
	}

	oc, ok := obs.ParseCause(outer[0].Cause)
	if !ok || oc.IsZero() {
		t.Fatalf("outer trace has no cause: %q", outer[0].Cause)
	}
	if oc.Node != node {
		t.Fatalf("outer cause node %016x, want this database's %016x", oc.Node, node)
	}
	if outer[0].ParentCause != "" {
		t.Fatalf("outer posting is a root but has parent %q", outer[0].ParentCause)
	}

	ic, ok := obs.ParseCause(inner[0].Cause)
	if !ok || ic.IsZero() {
		t.Fatalf("inner trace has no cause: %q", inner[0].Cause)
	}
	// The chain link: the nested posting's parent IS the outer posting.
	if inner[0].ParentCause != outer[0].Cause {
		t.Fatalf("inner parent %q does not link to outer cause %q",
			inner[0].ParentCause, outer[0].Cause)
	}
	if ic == oc {
		t.Fatal("inner and outer postings share one cause ID")
	}

	// The fire steps carry the pattern-origin cause of their trigger.
	wantFire := map[string]string{"Outer": outer[0].Cause, "Inner": inner[0].Cause}
	for _, r := range recs {
		for _, s := range r.Steps {
			if s.Kind != obs.StepFire {
				continue
			}
			if want, ok := wantFire[s.Trigger]; ok && s.Cause != want {
				t.Fatalf("fire step for %s has cause %q, want %q", s.Trigger, s.Cause, want)
			}
		}
	}
}

// TestProvenanceDisabled asserts SetProvenance(false) suppresses cause
// assignment entirely (the E20 baseline path).
func TestProvenanceDisabled(t *testing.T) {
	db, ref := cascadeFixture(t)
	db.SetProvenance(false)
	db.Tracer().SetRate(1)

	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, r := range db.Tracer().Snapshot() {
		if r.Cause != "" || r.ParentCause != "" {
			t.Fatalf("provenance disabled but trace %q carries cause %q parent %q",
				r.Event, r.Cause, r.ParentCause)
		}
	}
}

// TestDetachedProvenanceChain asserts a dependent (detached) firing's
// nested posting still links back: the action runs in its own system
// transaction after the detecting commit, and the event it posts must
// carry the detecting posting's cause as parent.
func TestDetachedProvenanceChain(t *testing.T) {
	cls := MustClass("DetCascade",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Method("Mark", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke", "after Mark"),
		Trigger("Det", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "Mark")
				return err
			},
			WithCoupling(Dependent)),
	)
	db := newTestDB(t, cls)
	db.Tracer().SetRate(1)
	tx := db.Begin()
	ref, _ := db.Create(tx, "DetCascade", &CredCard{})
	if _, err := db.Activate(tx, ref, "Det"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	var poke, mark *obs.TraceRecord
	for _, r := range db.Tracer().Snapshot() {
		r := r
		switch r.Event {
		case "DetCascade::after Poke":
			poke = &r
		case "DetCascade::after Mark":
			mark = &r
		}
	}
	if poke == nil || mark == nil {
		t.Fatal("missing traces for the detached cascade")
	}
	if poke.Cause == "" || mark.ParentCause != poke.Cause {
		t.Fatalf("detached posting parent %q does not link to detecting cause %q",
			mark.ParentCause, poke.Cause)
	}
}
