package core

import (
	"fmt"
	"testing"

	"ode/internal/storage/dali"
)

// CredCard reproduces the paper's §4 class:
//
//	persistent class CredCard {
//	    persistent Customer *issuedTo;
//	    float credLim, currBal;
//	    ...
//	    event after Buy, after PayBill, BigBuy;
//	    trigger DenyCredit() : perpetual after Buy & (currBal>credLim)
//	        ==> {BlackMark("Over Limit", today()); tabort;}
//	    trigger AutoRaiseLimit(float amount) :
//	        relative((after Buy & MoreCred()), after PayBill)
//	        ==> RaiseLimit(amount);
//	};
type CredCard struct {
	Holder     string
	CredLim    float64
	CurrBal    float64
	GoodHist   bool
	BlackMarks []string
}

// MoreCred is the paper's private helper:
// (currBal > 0.8*credLim) && GoodCredHist().
func (c *CredCard) MoreCred() bool {
	return c.CurrBal > 0.8*c.CredLim && c.GoodHist
}

// newCredCardClass builds the CredCard class definition.
func newCredCardClass() *Class {
	return MustClass("CredCard",
		Factory(func() any { return new(CredCard) }),
		Method("Buy", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		Method("PayBill", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal -= args[0].(float64)
			return nil, nil
		}),
		Method("RaiseLimit", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CredLim += args[0].(float64)
			return nil, nil
		}),
		Method("BlackMark", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.BlackMarks = append(c.BlackMarks, args[0].(string))
			return nil, nil
		}),
		ReadOnlyMethod("GoodCredHist", func(ctx *Ctx, self any, args []any) (any, error) {
			return self.(*CredCard).GoodHist, nil
		}),
		Events("after Buy", "after PayBill", "BigBuy"),
		Mask("OverLimit", func(ctx *Ctx, self any, act *Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > c.CredLim, nil
		}),
		Mask("MoreCred", func(ctx *Ctx, self any, act *Activation) (bool, error) {
			return self.(*CredCard).MoreCred(), nil
		}),
		Trigger("DenyCredit", "after Buy & OverLimit",
			func(ctx *Ctx, self any, act *Activation) error {
				if _, err := ctx.Invoke(ctx.Self(), "BlackMark", "Over Limit"); err != nil {
					return err
				}
				ctx.TAbort()
				return nil
			},
			Perpetual()),
		Trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
			func(ctx *Ctx, self any, act *Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "RaiseLimit", act.ArgFloat(0))
				return err
			}),
	)
}

// newTestDB returns a main-memory database with CredCard registered.
func newTestDB(t *testing.T, classes ...*Class) *Database {
	t.Helper()
	db, err := NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if len(classes) == 0 {
		classes = []*Class{newCredCardClass()}
	}
	if err := db.Register(classes...); err != nil {
		t.Fatal(err)
	}
	return db
}

// newCard commits a fresh card and returns its Ref.
func newCard(t *testing.T, db *Database, limit float64, goodHist bool) Ref {
	t.Helper()
	tx := db.Begin()
	ref, err := db.Create(tx, "CredCard", &CredCard{Holder: "Narain", CredLim: limit, GoodHist: goodHist})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return ref
}

// card loads the current committed state of a card.
func card(t *testing.T, db *Database, ref Ref) *CredCard {
	t.Helper()
	tx := db.Begin()
	defer tx.Abort()
	v, err := db.Get(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	c := v.(*CredCard)
	cp := *c
	return &cp
}

// buy invokes Buy in its own transaction, returning the commit error.
func buy(t *testing.T, db *Database, ref Ref, amount float64) error {
	t.Helper()
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Buy", amount); err != nil {
		tx.Abort()
		t.Fatalf("Buy: %v", err)
	}
	return tx.Commit()
}

func payBill(t *testing.T, db *Database, ref Ref, amount float64) error {
	t.Helper()
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "PayBill", amount); err != nil {
		tx.Abort()
		t.Fatalf("PayBill: %v", err)
	}
	return tx.Commit()
}

// sanity check that the fixture compiles its FSMs at registration.
func TestCredCardClassRegisters(t *testing.T) {
	db := newTestDB(t)
	bc, ok := db.ClassOf("CredCard")
	if !ok {
		t.Fatal("CredCard not bound")
	}
	if len(bc.ownTriggers) != 2 {
		t.Fatalf("bound %d triggers, want 2", len(bc.ownTriggers))
	}
	// The AutoRaiseLimit machine is the paper's Figure 1: four states.
	arl, ok := bc.TriggerByName("AutoRaiseLimit")
	if !ok {
		t.Fatal("AutoRaiseLimit not found")
	}
	if got := arl.Machine.NumStates(); got != 4 {
		t.Fatalf("AutoRaiseLimit FSM has %d states, Figure 1 has 4:\n%s",
			got, arl.Machine.Format(nil))
	}
	names := bc.Def.Triggers()
	if fmt.Sprint(names) != "[DenyCredit AutoRaiseLimit]" {
		t.Fatalf("trigger names: %v", names)
	}
}
