package core

import (
	"errors"
	"testing"

	"ode/internal/txn"
)

func TestLocalTriggerFiresWithinTransaction(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	if _, err := db.ActivateLocal(tx, ref, "DenyCredit"); err != nil {
		t.Fatal(err)
	}
	if db.LocalTriggersOn(tx, ref) != 1 {
		t.Fatal("local activation not recorded")
	}
	// The over-limit buy fires the local DenyCredit, which taborts.
	if _, err := db.Invoke(tx, ref, "Buy", 5000.0); err != nil {
		t.Fatal(err)
	}
	if !tx.Doomed() {
		t.Fatal("local trigger did not fire")
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("commit = %v", err)
	}
}

func TestLocalTriggerDiesWithTransaction(t *testing.T) {
	// §8: local-rule state is deallocated at end of transaction — a
	// pattern armed in one transaction must not carry into the next.
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)

	tx := db.Begin()
	if _, err := db.ActivateLocal(tx, ref, "AutoRaiseLimit", 500.0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, ref, "Buy", 900.0); err != nil { // arms
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A new transaction: the local activation is gone.
	tx2 := db.Begin()
	if db.LocalTriggersOn(tx2, ref) != 0 {
		t.Fatal("local activation survived its transaction")
	}
	if _, err := db.Invoke(tx2, ref, "PayBill", 100.0); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if c := card(t, db, ref); c.CredLim != 1000 {
		t.Fatalf("local trigger fired across transactions: limit %v", c.CredLim)
	}
}

func TestLocalTriggerTakesNoTriggerLocks(t *testing.T) {
	// §8: "such triggers never require obtaining write locks for the
	// purpose of processing trigger events" — a read-only invocation
	// observed by a local trigger leaves the transaction's lock set
	// read-only (unlike the persistent QueryPattern in experiment E8).
	cls := MustClass("Q",
		Factory(func() any { return new(CredCard) }),
		ReadOnlyMethod("Query", func(ctx *Ctx, self any, args []any) (any, error) {
			return self.(*CredCard).CurrBal, nil
		}),
		Events("after Query"),
		Trigger("OnQuery", "after Query, after Query",
			func(ctx *Ctx, self any, act *Activation) error { return nil },
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Q", &CredCard{})
	tx.Commit()

	db.Locks().ResetStats()
	tx2 := db.Begin()
	if _, err := db.ActivateLocal(tx2, ref, "OnQuery"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Invoke(tx2, ref, "Query"); err != nil {
			t.Fatal(err)
		}
	}
	tx2.Commit()
	if up := db.Locks().Stats().Upgrades; up != 0 {
		t.Fatalf("local trigger processing performed %d lock upgrades, want 0", up)
	}
	if wr := tx2.WriteCount(); wr != 0 {
		t.Fatalf("local trigger processing buffered %d writes, want 0", wr)
	}
}

func TestLocalOnceOnlyAndPerpetual(t *testing.T) {
	fired := 0
	cls := MustClass("L",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("Once", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error { fired++; return nil }),
		Trigger("Always", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error { fired += 100; return nil },
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "L", &CredCard{})
	db.ActivateLocal(tx, ref, "Once")
	db.ActivateLocal(tx, ref, "Always")
	for i := 0; i < 3; i++ {
		if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	// Once fires 1 time, Always fires 3 times.
	if fired != 1+300 {
		t.Fatalf("fired = %d, want 301", fired)
	}
}

func TestLocalDeferredConstraint(t *testing.T) {
	// The paper's "efficiently implement constraints" use: an end-coupled
	// local rule checks an invariant at commit with zero storage cost.
	db := newTestDB(t)
	ref := newCard(t, db, 100, true)
	tx := db.Begin()
	if _, err := db.ActivateLocal(tx, ref, "DenyCredit"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, ref, "Buy", 50.0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("within-limit commit: %v", err)
	}
}

func TestLocalDeactivate(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	id, err := db.ActivateLocal(tx, ref, "DenyCredit")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeactivateLocal(tx, id); err != nil {
		t.Fatal(err)
	}
	if db.LocalTriggersOn(tx, ref) != 0 {
		t.Fatal("deactivated local trigger still counted")
	}
	// Over-limit buy no longer fires.
	if _, err := db.Invoke(tx, ref, "Buy", 5000.0); err != nil {
		t.Fatal(err)
	}
	if tx.Doomed() {
		t.Fatal("deactivated local trigger fired")
	}
	// Double deactivation errors.
	if err := db.DeactivateLocal(tx, id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double deactivate: %v", err)
	}
	tx.Abort()
}

func TestLocalIDFromOtherTxnRejected(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	id, _ := db.ActivateLocal(tx, ref, "DenyCredit")
	tx.Commit()

	tx2 := db.Begin()
	defer tx2.Abort()
	if err := db.DeactivateLocal(tx2, id); err == nil {
		t.Fatal("foreign local trigger ID accepted")
	}
	if id.IsNil() {
		t.Fatal("valid id reported nil")
	}
	if (LocalTriggerID{}).IsNil() != true {
		t.Fatal("zero id not nil")
	}
}

func TestLocalUnknownTrigger(t *testing.T) {
	db := newTestDB(t)
	ref := newCard(t, db, 1000, true)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := db.ActivateLocal(tx, ref, "NoSuch"); !errors.Is(err, ErrUnknownTrigger) {
		t.Fatalf("unknown local trigger: %v", err)
	}
}

func TestLocalIndependentSurvivesAbort(t *testing.T) {
	// Local rules compose with coupling modes: a local !dependent firing
	// still runs its detached action after the abort.
	fired := 0
	cls := MustClass("LI",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke"),
		Trigger("T", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error { fired++; return nil },
			WithCoupling(Independent)),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "LI", &CredCard{})
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.ActivateLocal(tx2, ref, "T"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	if fired != 1 {
		t.Fatalf("local !dependent fired %d times after abort, want 1", fired)
	}
}
