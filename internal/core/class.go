// Package core implements the Ode trigger system: the paper's primary
// contribution. It ties the substrates together — event registry, event
// expression compiler, extended FSMs, lock/transaction/object managers —
// into the run-time described in §5: class type descriptors carrying
// TriggerInfo arrays, persistent TriggerStates found through the
// object→trigger index, the PostEvent algorithm, and the four ECA coupling
// modes with their transaction hooks.
//
// This file is the class-definition DSL: the Go analog of an O++ class
// declaration. Where the paper's O++ compiler generates wrapper functions
// and type descriptors from
//
//	persistent class CredCard {
//	    ...
//	    event after Buy, after PayBill, BigBuy;
//	    trigger DenyCredit() : perpetual after Buy & (currBal>credLim)
//	        ==> {BlackMark("Over Limit", today()); tabort;}
//	};
//
// this reproduction registers the same information at run time:
//
//	cls, err := core.NewClass("CredCard",
//	    core.Factory(func() any { return new(CredCard) }),
//	    core.Method("Buy", buy),
//	    core.Method("PayBill", payBill),
//	    core.Events("after Buy", "after PayBill", "BigBuy"),
//	    core.Mask("OverLimit", overLimit),
//	    core.Trigger("DenyCredit", "after Buy & OverLimit", denyCredit,
//	        core.Perpetual()),
//	)
//
// The observable contract matches §5.3: invoking a method through a
// persistent reference (Database.Invoke) posts the declared before/after
// events; calling the Go method directly on a volatile value involves no
// trigger machinery at all.
package core

import (
	"fmt"
	"strings"

	"ode/internal/event"
	"ode/internal/eventexpr"
)

// Coupling is an ECA coupling mode (§4.2).
type Coupling uint8

const (
	// Immediate triggers fire as soon as their composite event is
	// detected, inside the detecting transaction.
	Immediate Coupling = iota
	// Deferred ("end") triggers fire in the detecting transaction right
	// before it attempts to commit.
	Deferred
	// Dependent triggers fire in a separate transaction that may commit
	// only if the detecting transaction commits.
	Dependent
	// Independent ("!dependent") triggers fire in a separate transaction
	// with no commit dependency: it runs even if the detecting
	// transaction aborts.
	Independent
)

func (c Coupling) String() string {
	switch c {
	case Immediate:
		return "immediate"
	case Deferred:
		return "end"
	case Dependent:
		return "dependent"
	case Independent:
		return "!dependent"
	default:
		return fmt.Sprintf("Coupling(%d)", uint8(c))
	}
}

// MethodFunc is the body of a member function. self is the decoded object
// (the concrete type produced by the class factory); mutations to self are
// written back when the method returns without error (unless the method
// was registered read-only).
type MethodFunc func(ctx *Ctx, self any, args []any) (any, error)

// MaskFunc evaluates a trigger mask (§5.1.2) — the analog of the
// compiler-generated static member functions like Pred1AutoRaiseLimit
// (§5.4.2). It must be a pure predicate over the object and the trigger's
// activation arguments.
type MaskFunc func(ctx *Ctx, self any, act *Activation) (bool, error)

// ActionFunc is a trigger action — the analog of the generated
// AutoRaiseLimitTriggerFunc (§5.4.2). Actions may invoke methods, post
// user events, and request transaction abort (ctx.TAbort, the tabort
// statement).
type ActionFunc func(ctx *Ctx, self any, act *Activation) error

// MethodDef describes one member function.
type MethodDef struct {
	Name     string
	Fn       MethodFunc
	ReadOnly bool
	// owner is the class that defined (or last overrode) the method.
	owner *Class
}

// eventDecl is a declared event together with its declaring class; the
// declaring class determines the event's run-time identity, so an
// inherited event shares its ID with the base class (§5.2, §6).
type eventDecl struct {
	decl  event.Decl
	owner *Class
}

// key returns the expression-language spelling used for lookup
// ("after Buy", "BigBuy", "before tcomplete").
func (e eventDecl) key() string {
	switch e.decl.Kind {
	case event.KindBefore:
		return "before " + e.decl.Name
	case event.KindAfter:
		return "after " + e.decl.Name
	case event.KindTxn:
		return "before " + e.decl.Name
	default:
		return e.decl.Name
	}
}

// TriggerDef describes one trigger of a class.
type TriggerDef struct {
	Name      string
	Expr      string
	Action    ActionFunc
	Perpetual bool
	Coupling  Coupling

	parsed *eventexpr.Parsed
	// num is the trigger's index within its defining class — the
	// paper's triggernum (§5.4.1).
	num   int
	owner *Class
}

// Class is a fully resolved class definition (inheritance flattened). It
// is immutable after NewClass and may be registered with any number of
// databases.
type Class struct {
	name    string
	parents []*Class
	factory func() any

	methods  map[string]*MethodDef
	events   []eventDecl
	eventKey map[string]eventDecl
	masks    map[string]MaskFunc
	// ownTriggers are the triggers defined by this class, in declaration
	// order (their index is the persistent triggernum).
	ownTriggers []*TriggerDef
	// triggersByName includes inherited triggers (activation by name).
	triggersByName map[string]*TriggerDef
	// txnInterest is set when the class declares a transaction event.
	txnInterest bool
	// ancestors holds every class name in the inheritance closure,
	// including this class.
	ancestors map[string]bool
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// NewInstance returns a fresh value from the class factory (the concrete
// type stored objects decode into).
func (c *Class) NewInstance() any { return c.factory() }

// HasTxnInterest reports whether the class declared a transaction event.
func (c *Class) HasTxnInterest() bool { return c.txnInterest }

// Triggers returns the names of all activatable triggers (own and
// inherited), in defining-class order then declaration order.
func (c *Class) Triggers() []string {
	var out []string
	var walk func(cl *Class)
	seen := map[string]bool{}
	walk = func(cl *Class) {
		for _, p := range cl.parents {
			walk(p)
		}
		for _, t := range cl.ownTriggers {
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	walk(c)
	return out
}

// EventKeys returns the declared event spellings ("after Buy", …).
func (c *Class) EventKeys() []string {
	out := make([]string, len(c.events))
	for i, e := range c.events {
		out[i] = e.key()
	}
	return out
}

// IsSubclassOf reports whether c is other or derives from it.
func (c *Class) IsSubclassOf(other *Class) bool { return c.ancestors[other.name] }

// Option configures NewClass.
type Option func(*classBuilder)

type classBuilder struct {
	factory  func() any
	parents  []*Class
	methods  []*MethodDef
	events   []string
	masks    map[string]MaskFunc
	triggers []*TriggerDef
	errs     []string
}

// Factory sets the constructor for the class's Go representation. It is
// required: decoding a stored object needs a concrete value to fill.
func Factory(fn func() any) Option {
	return func(b *classBuilder) { b.factory = fn }
}

// Extends declares base classes (single or multiple inheritance, §2).
// Methods, events, masks, and triggers are inherited; a name defined by
// two parents must be overridden locally.
func Extends(parents ...*Class) Option {
	return func(b *classBuilder) { b.parents = append(b.parents, parents...) }
}

// Method declares a member function that may mutate the object.
func Method(name string, fn MethodFunc) Option {
	return func(b *classBuilder) {
		b.methods = append(b.methods, &MethodDef{Name: name, Fn: fn})
	}
}

// ReadOnlyMethod declares a const member function: it takes only a shared
// lock and skips the write-back.
func ReadOnlyMethod(name string, fn MethodFunc) Option {
	return func(b *classBuilder) {
		b.methods = append(b.methods, &MethodDef{Name: name, Fn: fn, ReadOnly: true})
	}
}

// Events is the O++ event declaration: each string is "before M",
// "after M" (member-function events), a bare identifier (a user-defined
// event), or "before tcomplete" / "before tabort" (transaction events,
// which also mark the class as interested in transaction events, §5.5).
// Only declared events are ever posted to objects of the class (§4).
func Events(decls ...string) Option {
	return func(b *classBuilder) { b.events = append(b.events, decls...) }
}

// Mask registers a named mask predicate usable in trigger expressions.
func Mask(name string, fn MaskFunc) Option {
	return func(b *classBuilder) {
		if b.masks == nil {
			b.masks = make(map[string]MaskFunc)
		}
		if _, dup := b.masks[name]; dup {
			b.errs = append(b.errs, fmt.Sprintf("mask %q declared twice", name))
		}
		b.masks[name] = fn
	}
}

// TriggerOption configures one trigger.
type TriggerOption func(*TriggerDef)

// Perpetual marks the trigger as remaining in force after it fires (§4);
// without it a trigger is deactivated after firing once.
func Perpetual() TriggerOption {
	return func(t *TriggerDef) { t.Perpetual = true }
}

// WithCoupling selects the trigger's coupling mode (default Immediate).
func WithCoupling(c Coupling) TriggerOption {
	return func(t *TriggerDef) { t.Coupling = c }
}

// Trigger declares a trigger: a named event-expression/action pair.
func Trigger(name, expr string, action ActionFunc, opts ...TriggerOption) Option {
	return func(b *classBuilder) {
		t := &TriggerDef{Name: name, Expr: expr, Action: action, Coupling: Immediate}
		for _, o := range opts {
			o(t)
		}
		b.triggers = append(b.triggers, t)
	}
}

// parseEventDecl turns a declaration string into an event.Decl.
func parseEventDecl(s string) (event.Decl, error) {
	fields := strings.Fields(s)
	switch len(fields) {
	case 1:
		if fields[0] == "before" || fields[0] == "after" || fields[0] == "any" {
			return event.Decl{}, fmt.Errorf("event declaration %q: missing name", s)
		}
		return event.User(fields[0]), nil
	case 2:
		name := fields[1]
		isTxn := name == "tcomplete" || name == "tabort"
		switch fields[0] {
		case "before":
			if isTxn {
				return event.Txn(name), nil
			}
			return event.Before(name), nil
		case "after":
			if isTxn {
				return event.Decl{}, fmt.Errorf("event declaration %q: after-transaction events were dropped from the design (§6)", s)
			}
			return event.After(name), nil
		}
	}
	return event.Decl{}, fmt.Errorf("event declaration %q: want \"before M\", \"after M\", or a user event name", s)
}

// NewClass builds and validates a class definition.
func NewClass(name string, opts ...Option) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("core: class name must not be empty")
	}
	b := &classBuilder{}
	for _, o := range opts {
		o(b)
	}
	c := &Class{
		name:           name,
		parents:        b.parents,
		factory:        b.factory,
		methods:        make(map[string]*MethodDef),
		eventKey:       make(map[string]eventDecl),
		masks:          make(map[string]MaskFunc),
		triggersByName: make(map[string]*TriggerDef),
		ancestors:      map[string]bool{name: true},
	}
	var errs []string
	errs = append(errs, b.errs...)

	// Inherit from parents; same-name definitions from two different
	// parents conflict unless overridden locally.
	localMethods := map[string]bool{}
	for _, md := range b.methods {
		if localMethods[md.Name] {
			errs = append(errs, fmt.Sprintf("method %q declared twice", md.Name))
		}
		localMethods[md.Name] = true
	}
	localMasks := b.masks
	for _, p := range b.parents {
		if p == nil {
			errs = append(errs, "nil parent class")
			continue
		}
		for a := range p.ancestors {
			c.ancestors[a] = true
		}
		for mname, md := range p.methods {
			if prev, ok := c.methods[mname]; ok && prev.owner != md.owner && !localMethods[mname] {
				errs = append(errs, fmt.Sprintf("method %q inherited ambiguously from %s and %s; override it locally", mname, prev.owner.name, md.owner.name))
			}
			c.methods[mname] = md
		}
		for _, e := range p.events {
			if _, ok := c.eventKey[e.key()]; !ok {
				c.events = append(c.events, e)
				c.eventKey[e.key()] = e
			}
			if e.decl.Kind == event.KindTxn {
				c.txnInterest = true
			}
		}
		for mn, mf := range p.masks {
			if _, ok := c.masks[mn]; ok && localMasks[mn] == nil {
				// Same mask name from two parents: require local override.
				errs = append(errs, fmt.Sprintf("mask %q inherited ambiguously; override it locally", mn))
			}
			c.masks[mn] = mf
		}
		for tn, td := range p.triggersByName {
			if prev, ok := c.triggersByName[tn]; ok && prev != td {
				errs = append(errs, fmt.Sprintf("trigger %q inherited ambiguously from %s and %s", tn, prev.owner.name, td.owner.name))
			}
			c.triggersByName[tn] = td
		}
	}

	// Local definitions override inherited ones.
	for _, md := range b.methods {
		md.owner = c
		c.methods[md.Name] = md
	}
	for mn, mf := range b.masks {
		c.masks[mn] = mf
	}
	for _, s := range b.events {
		d, err := parseEventDecl(s)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		ed := eventDecl{decl: d, owner: c}
		if d.Kind == event.KindTxn {
			c.txnInterest = true
			ed.owner = nil // transaction events are class-independent
		}
		if _, dup := c.eventKey[ed.key()]; dup {
			errs = append(errs, fmt.Sprintf("event %q declared twice", ed.key()))
			continue
		}
		c.events = append(c.events, ed)
		c.eventKey[ed.key()] = ed
	}

	// Member-function events must name declared methods.
	for _, e := range c.events {
		if e.decl.Kind == event.KindBefore || e.decl.Kind == event.KindAfter {
			if _, ok := c.methods[e.decl.Name]; !ok {
				errs = append(errs, fmt.Sprintf("event %q names unknown method %q", e.key(), e.decl.Name))
			}
		}
	}

	// Local triggers: parse and validate expressions.
	for i, td := range b.triggers {
		td.owner = c
		td.num = i
		if td.Action == nil {
			errs = append(errs, fmt.Sprintf("trigger %q has no action", td.Name))
		}
		if prev, ok := c.triggersByName[td.Name]; ok && prev.owner == c {
			errs = append(errs, fmt.Sprintf("trigger %q declared twice", td.Name))
		}
		parsed, err := eventexpr.Parse(td.Expr)
		if err != nil {
			errs = append(errs, fmt.Sprintf("trigger %q: %v", td.Name, err))
			continue
		}
		td.parsed = parsed
		for _, n := range eventexpr.Names(parsed.Expr) {
			key := n.String()
			if _, ok := c.eventKey[key]; !ok {
				errs = append(errs, fmt.Sprintf("trigger %q references undeclared event %q (all events of interest must be declared, §4)", td.Name, key))
			}
		}
		for _, mn := range eventexpr.MaskNames(parsed.Expr) {
			if _, ok := c.masks[mn]; !ok {
				errs = append(errs, fmt.Sprintf("trigger %q references unknown mask %q", td.Name, mn))
			}
		}
		c.ownTriggers = append(c.ownTriggers, td)
		c.triggersByName[td.Name] = td
	}

	if c.factory == nil {
		errs = append(errs, "class has no Factory")
	} else if c.factory() == nil {
		errs = append(errs, "Factory returned nil")
	}

	if len(errs) > 0 {
		return nil, fmt.Errorf("core: class %s: %s", name, strings.Join(errs, "; "))
	}
	return c, nil
}

// MustClass is NewClass for statically correct definitions; it panics on
// error (examples and tests).
func MustClass(name string, opts ...Option) *Class {
	c, err := NewClass(name, opts...)
	if err != nil {
		panic(err)
	}
	return c
}
