package core

import (
	"testing"
)

// auditFixture: an Account class interested in transaction events. The
// composite "after Deposit, before tcomplete" fires when a deposit is the
// last relevant thing before the transaction commits.
func auditFixture(t *testing.T) (*Database, Ref, *int, *int) {
	t.Helper()
	commits := new(int)
	aborts := new(int)
	cls := MustClass("Account",
		Factory(func() any { return new(CredCard) }),
		Method("Deposit", func(ctx *Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		Events("after Deposit", "before tcomplete", "before tabort"),
		Trigger("AuditCommit", "after Deposit, *any, before tcomplete",
			func(ctx *Ctx, self any, act *Activation) error {
				*commits++
				return nil
			},
			Perpetual()),
		Trigger("AuditAbort", "after Deposit, *any, before tabort",
			func(ctx *Ctx, self any, act *Activation) error {
				*aborts++
				return nil
			},
			Perpetual(), WithCoupling(Independent)),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, err := db.Create(tx, "Account", &CredCard{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "AuditCommit"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "AuditAbort"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, ref, commits, aborts
}

func TestBeforeTCompletePostedAtCommit(t *testing.T) {
	db, ref, commits, aborts := auditFixture(t)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Deposit", 100.0); err != nil {
		t.Fatal(err)
	}
	if *commits != 0 {
		t.Fatal("tcomplete trigger fired before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if *commits != 1 {
		t.Fatalf("AuditCommit fired %d times, want 1", *commits)
	}
	if *aborts != 0 {
		t.Fatalf("AuditAbort fired on the commit path")
	}
}

func TestBeforeTCompleteOncePerTransaction(t *testing.T) {
	// The object joins the transaction-event list once (first access);
	// tcomplete is posted once per transaction, not per access.
	db, ref, commits, _ := auditFixture(t)
	tx := db.Begin()
	for i := 0; i < 3; i++ {
		if _, err := db.Invoke(tx, ref, "Deposit", 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if *commits != 1 {
		t.Fatalf("AuditCommit fired %d times, want 1 (single tcomplete)", *commits)
	}
}

func TestBeforeTAbortPostedOnExplicitAbort(t *testing.T) {
	db, ref, commits, aborts := auditFixture(t)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Deposit", 100.0); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	// The AuditAbort trigger is !dependent, so its action survives the
	// abort (an immediate trigger's firing would be rolled back with the
	// transaction, §5.5).
	if *aborts != 1 {
		t.Fatalf("AuditAbort fired %d times, want 1", *aborts)
	}
	if *commits != 0 {
		t.Fatalf("AuditCommit fired on the abort path")
	}
	// The deposit itself rolled back.
	if c := card(t, db, ref); c.CurrBal != 0 {
		t.Fatalf("deposit survived abort: %v", c.CurrBal)
	}
}

func TestNoTxnEventsWithoutAccess(t *testing.T) {
	// A transaction that never touches the object posts no transaction
	// events to it.
	db, _, commits, aborts := auditFixture(t)
	tx := db.Begin()
	tx.Commit()
	tx2 := db.Begin()
	tx2.Abort()
	if *commits != 0 || *aborts != 0 {
		t.Fatalf("txn events posted without access: commits=%d aborts=%d", *commits, *aborts)
	}
}

func TestNoTAbortWithoutPriorDeposit(t *testing.T) {
	// The composite requires a Deposit before the abort; merely reading
	// the object then aborting must not fire.
	db, ref, _, aborts := auditFixture(t)
	tx := db.Begin()
	if _, err := db.Get(tx, ref); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if *aborts != 0 {
		t.Fatalf("AuditAbort fired without a deposit: %d", *aborts)
	}
}

func TestEndTriggerRunsBeforeTCompletePosting(t *testing.T) {
	// §5.5: "Immediately before posting before tcomplete events, commit
	// processing scans the end list and executes the relevant actions."
	var order []string
	cls := MustClass("Ordered",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke", "before tcomplete"),
		Trigger("EndT", "after Poke",
			func(ctx *Ctx, self any, act *Activation) error {
				order = append(order, "end")
				return nil
			},
			WithCoupling(Deferred), Perpetual()),
		Trigger("CompleteT", "before tcomplete",
			func(ctx *Ctx, self any, act *Activation) error {
				order = append(order, "tcomplete")
				return nil
			},
			Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "Ordered", &CredCard{})
	db.Activate(tx, ref, "EndT")
	db.Activate(tx, ref, "CompleteT")
	tx.Commit()
	// The setup commit itself posted a tcomplete (the object was
	// accessed); measure only the next transaction.
	order = nil

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "end" || order[1] != "tcomplete" {
		t.Fatalf("order = %v, want [end tcomplete]", order)
	}
}

func TestEndTriggerSatisfiedByTCompleteStillFires(t *testing.T) {
	// An end trigger whose composite event is completed BY the tcomplete
	// posting is drained in the second end-list pass.
	fired := 0
	cls := MustClass("LateEnd",
		Factory(func() any { return new(CredCard) }),
		Method("Poke", func(ctx *Ctx, self any, args []any) (any, error) { return nil, nil }),
		Events("after Poke", "before tcomplete"),
		Trigger("T", "after Poke, *any, before tcomplete",
			func(ctx *Ctx, self any, act *Activation) error {
				fired++
				return nil
			},
			WithCoupling(Deferred), Perpetual()),
	)
	db := newTestDB(t, cls)
	tx := db.Begin()
	ref, _ := db.Create(tx, "LateEnd", &CredCard{})
	db.Activate(tx, ref, "T")
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Poke"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("end trigger satisfied by tcomplete fired %d times, want 1", fired)
	}
}

func TestAfterTabortRejectedAtClassBuild(t *testing.T) {
	// §6: after tabort was dropped from the design; the class builder
	// must reject it (as it rejects after tcommit).
	_, err := NewClass("Bad",
		Factory(func() any { return new(CredCard) }),
		Events("after tabort"),
	)
	if err == nil {
		t.Fatal("after tabort accepted")
	}
	_, err = NewClass("Bad2",
		Factory(func() any { return new(CredCard) }),
		Events("after tcommit"),
	)
	if err == nil {
		t.Fatal("after tcommit accepted")
	}
}
