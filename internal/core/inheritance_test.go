package core

import (
	"testing"
)

// GoldCard derives from CredCard (the paper's Customer-derives-Person
// pattern, §2), adding a cash-back method with its own event and a
// derived-class trigger that mixes base and derived events.
type GoldCard struct {
	CredCard
	CashBack float64
}

func newGoldCardClass(base *Class) *Class {
	return MustClass("GoldCard",
		Extends(base),
		Factory(func() any { return new(GoldCard) }),
		Method("Redeem", func(ctx *Ctx, self any, args []any) (any, error) {
			g := self.(*GoldCard)
			g.CashBack = 0
			return nil, nil
		}),
		Events("after Redeem"),
		Trigger("RedeemAfterBuy", "after Buy, after Redeem",
			func(ctx *Ctx, self any, act *Activation) error {
				g := self.(*GoldCard)
				g.BlackMarks = append(g.BlackMarks, "redeemed-right-after-buy")
				return nil
			},
			Perpetual()),
	)
}

// goldFixture registers CredCard + GoldCard. GoldCard's factory returns
// *GoldCard, but the base class methods operate on *CredCard — the method
// bodies must therefore accept both. For the test we override the base
// methods in GoldCard terms where needed.
func goldFixture(t *testing.T) (*Database, *Class, *Class) {
	t.Helper()
	base := MustClass("CredCard",
		Factory(func() any { return new(CredCard) }),
		Method("Buy", func(ctx *Ctx, self any, args []any) (any, error) {
			switch c := self.(type) {
			case *CredCard:
				c.CurrBal += args[0].(float64)
			case *GoldCard:
				c.CurrBal += args[0].(float64)
			}
			return nil, nil
		}),
		Method("PayBill", func(ctx *Ctx, self any, args []any) (any, error) {
			switch c := self.(type) {
			case *CredCard:
				c.CurrBal -= args[0].(float64)
			case *GoldCard:
				c.CurrBal -= args[0].(float64)
			}
			return nil, nil
		}),
		Events("after Buy", "after PayBill"),
		Trigger("BuyThenPay", "after Buy, after PayBill",
			func(ctx *Ctx, self any, act *Activation) error {
				switch c := self.(type) {
				case *CredCard:
					c.BlackMarks = append(c.BlackMarks, "base-fired")
				case *GoldCard:
					c.BlackMarks = append(c.BlackMarks, "base-fired")
				}
				return nil
			},
			Perpetual()),
	)
	gold := newGoldCardClass(base)
	db := newTestDB(t, base, gold)
	return db, base, gold
}

func TestDerivedObjectRunsInheritedMethodsAndTriggers(t *testing.T) {
	db, _, _ := goldFixture(t)
	tx := db.Begin()
	ref, err := db.Create(tx, "GoldCard", &GoldCard{})
	if err != nil {
		t.Fatal(err)
	}
	// Base trigger activated on a derived object.
	if _, err := db.Activate(tx, ref, "BuyThenPay"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Buy", 100.0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx2, ref, "PayBill", 50.0); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3 := db.Begin()
	defer tx3.Abort()
	v, err := db.Get(tx3, ref)
	if err != nil {
		t.Fatal(err)
	}
	g := v.(*GoldCard)
	if g.CurrBal != 50 {
		t.Fatalf("inherited methods broken: balance %v", g.CurrBal)
	}
	if len(g.BlackMarks) != 1 || g.BlackMarks[0] != "base-fired" {
		t.Fatalf("base trigger on derived object: %v", g.BlackMarks)
	}
}

func TestBaseTriggerIgnoresDerivedEvents(t *testing.T) {
	// §5.4.3: "A base class trigger should not see the events of a
	// derived class" — the derived-only after Redeem must not break the
	// base trigger's Buy,PayBill adjacency.
	db, _, _ := goldFixture(t)
	tx := db.Begin()
	ref, _ := db.Create(tx, "GoldCard", &GoldCard{})
	db.Activate(tx, ref, "BuyThenPay")
	tx.Commit()

	tx2 := db.Begin()
	db.Invoke(tx2, ref, "Buy", 100.0)
	db.Invoke(tx2, ref, "Redeem") // derived event, invisible to base FSM
	db.Invoke(tx2, ref, "PayBill", 50.0)
	tx2.Commit()

	tx3 := db.Begin()
	defer tx3.Abort()
	v, _ := db.Get(tx3, ref)
	if marks := v.(*GoldCard).BlackMarks; len(marks) != 1 {
		t.Fatalf("base trigger saw derived event (marks %v)", marks)
	}
}

func TestDerivedTriggerMixesBaseAndDerivedEvents(t *testing.T) {
	db, _, _ := goldFixture(t)
	tx := db.Begin()
	ref, _ := db.Create(tx, "GoldCard", &GoldCard{})
	db.Activate(tx, ref, "RedeemAfterBuy")
	tx.Commit()

	tx2 := db.Begin()
	db.Invoke(tx2, ref, "Buy", 10.0) // base event, shared ID with base class
	db.Invoke(tx2, ref, "Redeem")    // derived event
	tx2.Commit()

	tx3 := db.Begin()
	defer tx3.Abort()
	v, _ := db.Get(tx3, ref)
	if marks := v.(*GoldCard).BlackMarks; len(marks) != 1 || marks[0] != "redeemed-right-after-buy" {
		t.Fatalf("derived trigger: %v", marks)
	}
}

func TestDerivedTriggerNotActivatableOnBaseObject(t *testing.T) {
	db, _, _ := goldFixture(t)
	tx := db.Begin()
	defer tx.Abort()
	ref, _ := db.Create(tx, "CredCard", &CredCard{})
	if _, err := db.Activate(tx, ref, "RedeemAfterBuy"); err == nil {
		t.Fatal("derived trigger activated on base object")
	}
}

func TestSharedEventIDsAcrossHierarchy(t *testing.T) {
	// The inherited "after Buy" must map to the same run-time integer in
	// base and derived descriptors (§5.2).
	db, _, _ := goldFixture(t)
	base, _ := db.ClassOf("CredCard")
	gold, _ := db.ClassOf("GoldCard")
	bID, ok1 := base.EventID("after Buy")
	gID, ok2 := gold.EventID("after Buy")
	if !ok1 || !ok2 || bID != gID {
		t.Fatalf("after Buy IDs differ: base %d (%v) vs derived %d (%v)", bID, ok1, gID, ok2)
	}
	if _, ok := base.EventID("after Redeem"); ok {
		t.Fatal("base class sees derived-only event")
	}
	if _, ok := gold.EventID("after Redeem"); !ok {
		t.Fatal("derived class missing its own event")
	}
}

func TestIsSubclassOf(t *testing.T) {
	_, base, gold := goldFixture(t)
	if !gold.IsSubclassOf(base) || !gold.IsSubclassOf(gold) {
		t.Fatal("subclass relation broken")
	}
	if base.IsSubclassOf(gold) {
		t.Fatal("base reported as subclass of derived")
	}
}

func TestMultipleInheritanceMerges(t *testing.T) {
	a := MustClass("A",
		Factory(func() any { return new(CredCard) }),
		Method("FromA", func(ctx *Ctx, self any, args []any) (any, error) { return "a", nil }),
		Events("after FromA"),
	)
	b := MustClass("B",
		Factory(func() any { return new(CredCard) }),
		Method("FromB", func(ctx *Ctx, self any, args []any) (any, error) { return "b", nil }),
		Events("after FromB"),
	)
	c := MustClass("C",
		Extends(a, b),
		Factory(func() any { return new(CredCard) }),
		Trigger("Both", "after FromA, after FromB",
			func(ctx *Ctx, self any, act *Activation) error { return nil }),
	)
	db := newTestDB(t, a, b, c)
	bc, _ := db.ClassOf("C")
	idA, okA := bc.EventID("after FromA")
	idB, okB := bc.EventID("after FromB")
	if !okA || !okB {
		t.Fatal("multiply inherited events missing")
	}
	// §6: globally unique integers mean no renumbering collision.
	if idA == idB {
		t.Fatalf("multiply inherited events collided on ID %d", idA)
	}
}

func TestMultipleInheritanceAmbiguityRejected(t *testing.T) {
	a := MustClass("AmbA",
		Factory(func() any { return new(CredCard) }),
		Method("Same", func(ctx *Ctx, self any, args []any) (any, error) { return "a", nil }),
	)
	b := MustClass("AmbB",
		Factory(func() any { return new(CredCard) }),
		Method("Same", func(ctx *Ctx, self any, args []any) (any, error) { return "b", nil }),
	)
	if _, err := NewClass("AmbC", Extends(a, b),
		Factory(func() any { return new(CredCard) })); err == nil {
		t.Fatal("ambiguous method inheritance accepted")
	}
	// Local override resolves the ambiguity.
	if _, err := NewClass("AmbD", Extends(a, b),
		Factory(func() any { return new(CredCard) }),
		Method("Same", func(ctx *Ctx, self any, args []any) (any, error) { return "d", nil }),
	); err != nil {
		t.Fatalf("override did not resolve ambiguity: %v", err)
	}
}

func TestRegisterRequiresParent(t *testing.T) {
	base := MustClass("Base1",
		Factory(func() any { return new(CredCard) }),
	)
	derived := MustClass("Derived1",
		Extends(base),
		Factory(func() any { return new(CredCard) }),
	)
	db := newTestDB(t)
	if err := db.Register(derived); err == nil {
		t.Fatal("derived registered without parent")
	}
	// Registering both at once works regardless of order.
	if err := db.Register(derived, base); err != nil {
		t.Fatalf("combined register: %v", err)
	}
}
