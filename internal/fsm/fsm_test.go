package fsm

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ode/internal/event"
	"ode/internal/eventexpr"
)

// testClass wires a small class-like environment: an event registry, a
// declared alphabet, and named masks with settable values.
type testClass struct {
	reg    *event.Registry
	ids    map[string]event.ID // "after Buy" -> ID
	alpha  []event.ID
	masks  map[string]bool
	evaled []string // mask evaluation trace
}

func newTestClass(decls ...event.Decl) *testClass {
	c := &testClass{
		reg:   event.NewRegistry(),
		ids:   make(map[string]event.ID),
		masks: make(map[string]bool),
	}
	for _, d := range decls {
		var id event.ID
		if d.Kind == event.KindTxn {
			// Transaction events are global, pre-registered by the
			// registry; the expression language spells them "before X".
			id = c.reg.Lookup("", d)
			c.ids["before "+d.Name] = id
		} else {
			id = c.reg.Register("T", d)
			c.ids[d.String()] = id
		}
		c.alpha = append(c.alpha, id)
	}
	return c
}

func (c *testClass) options() Options {
	return Options{
		Resolve: func(n *eventexpr.Name) (event.ID, error) {
			key := n.String()
			if n.Prefix != "" {
				key = n.Prefix + " " + n.Ident
			}
			id, ok := c.ids[key]
			if !ok {
				return event.None, fmt.Errorf("event %q not declared", key)
			}
			return id, nil
		},
		Alphabet: c.alpha,
		MaskExists: func(name string) error {
			if _, ok := c.masks[name]; !ok {
				return fmt.Errorf("mask %q not registered", name)
			}
			return nil
		},
	}
}

func (c *testClass) compile(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := Compile(eventexpr.MustParse(src), c.options())
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return m
}

func (c *testClass) eval(name string) (bool, error) {
	c.evaled = append(c.evaled, name)
	v, ok := c.masks[name]
	if !ok {
		return false, fmt.Errorf("unknown mask %q", name)
	}
	return v, nil
}

// run feeds named events through the machine and returns on which postings
// (0-based) the machine accepted.
func run(t *testing.T, c *testClass, m *Machine, events ...string) []int {
	t.Helper()
	var fired []int
	st := m.Start
	for i, name := range events {
		id, ok := c.ids[name]
		if !ok {
			t.Fatalf("test bug: event %q not declared", name)
		}
		next, acc, err := m.Advance(st, id, c.eval)
		if err != nil {
			t.Fatalf("Advance(%q): %v", name, err)
		}
		st = next
		if acc {
			fired = append(fired, i)
		}
	}
	return fired
}

// credCardClass reproduces the paper's §4 CredCard declaration with the
// paper's local numbering: BigBuy=0, after PayBill=1, after Buy=2.
func credCardClass() *testClass {
	c := newTestClass(event.User("BigBuy"), event.After("PayBill"), event.After("Buy"))
	c.masks["MoreCred"] = false
	c.masks["OverLimit"] = false
	return c
}

// TestE1Figure1FSM is experiment E1: the AutoRaiseLimit expression
// compiles to exactly the extended FSM of the paper's Figure 1 —
// four states, with:
//
//	state 0 (start): after Buy -> 1; BigBuy, after PayBill -> 0
//	state 1 (*mask MoreCred): True -> 2, False -> 0
//	state 2: after PayBill -> 3; BigBuy, after Buy -> 2
//	state 3 (accept)
func TestE1Figure1FSM(t *testing.T) {
	c := credCardClass()
	m := c.compile(t, "relative((after Buy & MoreCred()), after PayBill)")

	if got := m.NumStates(); got != 4 {
		t.Fatalf("machine has %d states, Figure 1 has 4:\n%s", got, m.Format(nil))
	}
	if m.Start != 0 {
		t.Fatalf("start state = %d, want 0", m.Start)
	}
	big, pay, buy := c.ids["BigBuy"], c.ids["after PayBill"], c.ids["after Buy"]

	wantTrans := func(state int32, ev event.ID, want int32) {
		t.Helper()
		if got := m.move(state, ev); got != want {
			t.Errorf("state %d on event %d -> %d, want %d\n%s", state, ev, got, want, m.Format(nil))
		}
	}
	// State 0: loops on BigBuy || after PayBill, moves to 1 on after Buy.
	if m.States[0].Mask != NoMask || m.States[0].Accept {
		t.Fatalf("state 0 should be a plain non-accept state")
	}
	wantTrans(0, big, 0)
	wantTrans(0, pay, 0)
	wantTrans(0, buy, 1)

	// State 1: mask state evaluating MoreCred; True -> 2, False -> 0.
	s1 := m.States[1]
	if s1.Mask == NoMask || m.Masks[s1.Mask] != "MoreCred" {
		t.Fatalf("state 1 is not the MoreCred mask state:\n%s", m.Format(nil))
	}
	if s1.OnTrue != 2 || s1.OnFalse != 0 {
		t.Fatalf("state 1 True->%d False->%d, want True->2 False->0", s1.OnTrue, s1.OnFalse)
	}
	if len(s1.Trans) != 0 {
		t.Fatalf("mask state 1 has %d basic transitions, want 0 (it does not wait for external events)", len(s1.Trans))
	}

	// State 2: loops on BigBuy || after Buy, accepts via after PayBill.
	if m.States[2].Mask != NoMask || m.States[2].Accept {
		t.Fatalf("state 2 should be a plain non-accept state")
	}
	wantTrans(2, big, 2)
	wantTrans(2, buy, 2)
	wantTrans(2, pay, 3)

	// State 3: the accept state.
	if !m.States[3].Accept {
		t.Fatalf("state 3 is not accepting:\n%s", m.Format(nil))
	}
}

func TestDenyCreditMachine(t *testing.T) {
	// after Buy & OverLimit: accepts exactly when a Buy is posted while
	// the mask holds.
	c := credCardClass()
	m := c.compile(t, "after Buy & OverLimit")

	c.masks["OverLimit"] = false
	if fired := run(t, c, m, "after Buy", "BigBuy", "after Buy"); len(fired) != 0 {
		t.Fatalf("fired at %v with mask false", fired)
	}
	c.masks["OverLimit"] = true
	if fired := run(t, c, m, "after PayBill", "after Buy"); len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired at %v, want [1]", fired)
	}
}

func TestAutoRaiseLimitBehaviour(t *testing.T) {
	c := credCardClass()
	m := c.compile(t, "relative((after Buy & MoreCred()), after PayBill)")

	// Mask false: the Buy never arms the pattern.
	c.masks["MoreCred"] = false
	if fired := run(t, c, m, "after Buy", "after PayBill"); len(fired) != 0 {
		t.Fatalf("fired at %v with MoreCred false", fired)
	}
	// Mask true: Buy arms; any later PayBill fires, even after noise.
	c.masks["MoreCred"] = true
	fired := run(t, c, m, "after Buy", "BigBuy", "BigBuy", "after PayBill")
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at %v, want [3]", fired)
	}
}

func TestSequence(t *testing.T) {
	c := newTestClass(event.User("A"), event.User("B"), event.User("C"))
	m := c.compile(t, "A, B")
	if fired := run(t, c, m, "A", "B"); len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("A,B on [A B]: fired %v", fired)
	}
	// Unanchored: subsequence may start anywhere, but A,B means B
	// immediately after A in the stream of declared events.
	if fired := run(t, c, m, "A", "C", "B"); len(fired) != 0 {
		t.Fatalf("A,B on [A C B]: fired %v, want none (C breaks adjacency)", fired)
	}
	if fired := run(t, c, m, "C", "A", "B"); len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("A,B on [C A B]: fired %v, want [2]", fired)
	}
}

func TestUnion(t *testing.T) {
	c := newTestClass(event.User("A"), event.User("B"), event.User("C"))
	m := c.compile(t, "A || B")
	if fired := run(t, c, m, "C", "B"); len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired %v", fired)
	}
	if fired := run(t, c, m, "A"); len(fired) != 1 {
		t.Fatalf("fired %v", fired)
	}
}

func TestStarSequence(t *testing.T) {
	// A, *B, C: an A, then zero or more Bs, then a C.
	c := newTestClass(event.User("A"), event.User("B"), event.User("C"))
	m := c.compile(t, "A, *B, C")
	if fired := run(t, c, m, "A", "C"); len(fired) != 1 {
		t.Fatalf("zero Bs: fired %v", fired)
	}
	if fired := run(t, c, m, "A", "B", "B", "B", "C"); len(fired) != 1 || fired[0] != 4 {
		t.Fatalf("three Bs: fired %v", fired)
	}
	if fired := run(t, c, m, "A", "B", "A", "C"); len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("restart inside: fired %v, want [3] (second A restarts)", fired)
	}
}

func TestAnchored(t *testing.T) {
	c := newTestClass(event.User("A"), event.User("B"))
	m := c.compile(t, "^A, B")
	if !m.Anchored {
		t.Fatal("machine not marked anchored")
	}
	if fired := run(t, c, m, "A", "B"); len(fired) != 1 {
		t.Fatalf("anchored exact match: fired %v", fired)
	}
	// A leading B kills the anchored match permanently (§5.1.1: "nothing
	// ignored").
	if fired := run(t, c, m, "B", "A", "B"); len(fired) != 0 {
		t.Fatalf("anchored with leading noise: fired %v, want none", fired)
	}
	// Trailing events after a dead anchored machine stay dead.
	if fired := run(t, c, m, "A", "A", "B", "A", "B"); len(fired) != 0 {
		t.Fatalf("anchored broken mid-match: fired %v, want none", fired)
	}
}

func TestUnknownEventsIgnored(t *testing.T) {
	// §5.4.3: an event with no transition is ignored — this is how a base
	// class trigger ignores derived-class events.
	c := newTestClass(event.User("A"), event.User("B"))
	m := c.compile(t, "A, B")
	derived := c.reg.Register("Derived", event.After("Extra"))

	st := m.Start
	st, acc, err := m.Advance(st, c.ids["A"], c.eval)
	if err != nil || acc {
		t.Fatalf("after A: acc=%v err=%v", acc, err)
	}
	mid := st
	st, acc, err = m.Advance(st, derived, c.eval)
	if err != nil {
		t.Fatal(err)
	}
	if acc || st != mid {
		t.Fatalf("derived event changed state %d -> %d (acc=%v), want ignored", mid, st, acc)
	}
	_, acc, err = m.Advance(st, c.ids["B"], c.eval)
	if err != nil || !acc {
		t.Fatalf("after ignored event, B should still complete: acc=%v err=%v", acc, err)
	}
}

func TestMaskCascade(t *testing.T) {
	// (A & m1) || (A & m2): one posting of A must evaluate both masks
	// (serialized into a chain of mask states) before quiescing.
	c := newTestClass(event.User("A"))
	c.masks["m1"] = false
	c.masks["m2"] = true
	m := c.compile(t, "(A & m1) || (A & m2)")

	c.evaled = nil
	fired := run(t, c, m, "A")
	if len(fired) != 1 {
		t.Fatalf("fired %v, want one fire via m2", fired)
	}
	if len(c.evaled) != 2 {
		t.Fatalf("evaluated masks %v, want both m1 and m2", c.evaled)
	}
	c.masks["m2"] = false
	if fired := run(t, c, m, "A"); len(fired) != 0 {
		t.Fatalf("fired %v with both masks false", fired)
	}
}

func TestStickyAcceptAcrossCascade(t *testing.T) {
	// A || (A & m): posting A accepts via the bare branch even when the
	// mask branch evaluates False afterwards — the accept must not be
	// lost while the cascade resolves.
	c := newTestClass(event.User("A"))
	c.masks["m"] = false
	m := c.compile(t, "A || (A & m)")
	if fired := run(t, c, m, "A"); len(fired) != 1 {
		t.Fatalf("fired %v, want [0] (bare branch accepts)", fired)
	}
}

func TestChainedMasks(t *testing.T) {
	// A & m1 & m2: both masks must hold.
	c := newTestClass(event.User("A"))
	c.masks["m1"], c.masks["m2"] = false, false
	m := c.compile(t, "A & m1 & m2")
	for _, tc := range []struct {
		m1, m2 bool
		want   int
	}{
		{true, true, 1},
		{true, false, 0},
		{false, true, 0},
		{false, false, 0},
	} {
		c.masks["m1"], c.masks["m2"] = tc.m1, tc.m2
		if fired := run(t, c, m, "A"); len(fired) != tc.want {
			t.Errorf("m1=%v m2=%v: fired %v, want %d fires", tc.m1, tc.m2, fired, tc.want)
		}
	}
}

func TestMaskEvalError(t *testing.T) {
	c := newTestClass(event.User("A"))
	c.masks["m"] = true
	m := c.compile(t, "A & m")
	wantErr := errors.New("boom")
	_, _, err := m.Advance(m.Start, c.ids["A"], func(string) (bool, error) {
		return false, wantErr
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("Advance error = %v, want wrapped boom", err)
	}
}

func TestAdvanceStateRangeError(t *testing.T) {
	c := newTestClass(event.User("A"))
	m := c.compile(t, "A")
	if _, _, err := m.Advance(99, c.ids["A"], c.eval); err == nil {
		t.Fatal("Advance(out-of-range) succeeded")
	}
}

func TestRepeatedDetection(t *testing.T) {
	// The machine keeps matching after an accept (the engine decides
	// whether to reset or deactivate; the machine itself continues).
	c := newTestClass(event.User("A"), event.User("B"))
	m := c.compile(t, "A, B")
	fired := run(t, c, m, "A", "B", "A", "B")
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired %v, want [1 3]", fired)
	}
}

func TestOverlappingMatchesFireOncePerPosting(t *testing.T) {
	// Footnote 5: several patterns may match ending at the same event;
	// Advance reports a single accept per posting.
	c := newTestClass(event.User("A"), event.User("B"))
	m := c.compile(t, "(A, B) || B")
	fired := run(t, c, m, "A", "B")
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired %v, want exactly [1]", fired)
	}
}

func TestCompileErrors(t *testing.T) {
	c := newTestClass(event.User("A"))
	cases := []string{
		"Undeclared",        // event not declared
		"A & nosuchmask",    // mask not registered
		"after NotDeclared", // member event not declared
	}
	for _, src := range cases {
		if _, err := Compile(eventexpr.MustParse(src), c.options()); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		} else if _, ok := err.(*CompileError); !ok {
			t.Errorf("Compile(%q) error type %T, want *CompileError", src, err)
		}
	}
}

func TestCompileEmptyAlphabetWithAny(t *testing.T) {
	opts := Options{
		Resolve: func(n *eventexpr.Name) (event.ID, error) { return 5, nil },
	}
	if _, err := Compile(eventexpr.MustParse("A"), opts); err == nil {
		t.Fatal("unanchored expression with empty alphabet should fail")
	}
	// Anchored expressions without 'any' are fine with no alphabet.
	if _, err := Compile(eventexpr.MustParse("^A"), opts); err != nil {
		t.Fatalf("anchored compile failed: %v", err)
	}
}

func TestStartAccepts(t *testing.T) {
	c := newTestClass(event.User("A"))
	if m := c.compile(t, "^*A"); !m.StartAccepts() {
		t.Error("^*A should accept the empty stream")
	}
	if m := c.compile(t, "A"); m.StartAccepts() {
		t.Error("A should not accept the empty stream")
	}
}

func TestFormat(t *testing.T) {
	c := credCardClass()
	m := c.compile(t, "relative((after Buy & MoreCred()), after PayBill)")
	names := map[event.ID]string{
		c.ids["BigBuy"]:        "BigBuy",
		c.ids["after PayBill"]: "after PayBill",
		c.ids["after Buy"]:     "after Buy",
	}
	out := m.Format(func(id event.ID) string { return names[id] })
	for _, want := range []string{
		"state 0 (start)",
		"*mask MoreCred: True -> 2, False -> 0",
		"after Buy -> 1",
		"state 3 (accept)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	// nil describe must not panic.
	if m.Format(nil) == "" {
		t.Error("Format(nil) empty")
	}
}

func TestTransactionEventInAlphabet(t *testing.T) {
	// A class may express interest in transaction events (§5.1); they
	// participate in expressions like any other basic event.
	c := newTestClass(event.User("A"), event.BeforeTComplete)
	m := c.compile(t, "A, before tcomplete")
	fired := run(t, c, m, "A", "before tcomplete")
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired %v, want [1]", fired)
	}
}

// --- sparse vs dense equivalence -----------------------------------------

// genSources is a pool of expressions exercising every operator.
var genSources = []string{
	"A",
	"A, B",
	"A || B",
	"*A, B",
	"A & m1",
	"A & m1 & m2",
	"(A & m1) || (B & m2)",
	"relative(A, B)",
	"relative((A & m1), B, C)",
	"^A, B, C",
	"(A || B), *C, A",
	"*(A, B), C",
	"relative((A & m1), (B & m2))",
}

func TestDenseEquivalence(t *testing.T) {
	// Property: for random expressions, mask settings, and streams, the
	// dense machine produces identical (state, accept) traces.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := newTestClass(event.User("A"), event.User("B"), event.User("C"))
		c.masks["m1"] = r.Intn(2) == 0
		c.masks["m2"] = r.Intn(2) == 0
		src := genSources[r.Intn(len(genSources))]
		m, err := Compile(eventexpr.MustParse(src), c.options())
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		d := NewDense(m)

		evs := []event.ID{c.ids["A"], c.ids["B"], c.ids["C"], c.reg.Register("X", event.User("X"))}
		sSt, dSt := m.Start, m.Start
		for i := 0; i < 40; i++ {
			// Flip masks mid-stream sometimes.
			if r.Intn(10) == 0 {
				c.masks["m1"] = !c.masks["m1"]
			}
			ev := evs[r.Intn(len(evs))]
			s2, sAcc, err1 := m.Advance(sSt, ev, c.eval)
			d2, dAcc, err2 := d.Advance(dSt, ev, c.eval)
			if (err1 == nil) != (err2 == nil) {
				t.Logf("%q: error divergence: %v vs %v", src, err1, err2)
				return false
			}
			if s2 != d2 || sAcc != dAcc {
				t.Logf("%q: divergence at step %d: sparse (%d,%v) dense (%d,%v)", src, i, s2, sAcc, d2, dAcc)
				return false
			}
			sSt, dSt = s2, d2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseFootprintGrowsWithAlphabet(t *testing.T) {
	// E6's shape: dense footprint grows with |alphabet| × |states| even
	// when the expression only touches two events; sparse stays small.
	small := newTestClass(event.User("A"), event.User("B"))
	var declsBig []event.Decl
	declsBig = append(declsBig, event.User("A"), event.User("B"))
	for i := 0; i < 62; i++ {
		declsBig = append(declsBig, event.User(fmt.Sprintf("E%d", i)))
	}
	big := newTestClass(declsBig...)

	mSmall := small.compile(t, "A, B")
	mBig := big.compile(t, "A, B")
	dSmall := NewDense(mSmall)
	dBig := NewDense(mBig)

	if dBig.MemoryFootprint() <= dSmall.MemoryFootprint() {
		t.Fatalf("dense footprint did not grow with alphabet: %d vs %d",
			dBig.MemoryFootprint(), dSmall.MemoryFootprint())
	}
	// The sparse machine grows too (its states now carry the wider
	// (*any) self-loops) but far less than the dense matrix.
	sparseGrowth := float64(mBig.MemoryFootprint()) / float64(mSmall.MemoryFootprint())
	denseGrowth := float64(dBig.MemoryFootprint()) / float64(dSmall.MemoryFootprint())
	if denseGrowth <= sparseGrowth {
		t.Fatalf("dense growth %.1fx not worse than sparse growth %.1fx", denseGrowth, sparseGrowth)
	}
}

func TestDenseWidth(t *testing.T) {
	c := newTestClass(event.User("A"), event.User("B"), event.User("C"))
	d := NewDense(c.compile(t, "A, B"))
	if d.Width() != 3 {
		t.Fatalf("dense width = %d, want 3 (full class alphabet)", d.Width())
	}
}

func TestDenseAdvanceStateRangeError(t *testing.T) {
	c := newTestClass(event.User("A"))
	d := NewDense(c.compile(t, "A"))
	if _, _, err := d.Advance(99, c.ids["A"], c.eval); err == nil {
		t.Fatal("dense Advance(out-of-range) succeeded")
	}
}

func TestMachinesAreShared(t *testing.T) {
	// §5.1.3: FSM data is shared; per-activation state is one int32. The
	// machine must therefore be stateless across Advance calls — verify
	// interleaving two "activations" over one machine.
	c := newTestClass(event.User("A"), event.User("B"))
	m := c.compile(t, "A, B")
	st1, st2 := m.Start, m.Start
	var err error
	st1, _, err = m.Advance(st1, c.ids["A"], c.eval)
	if err != nil {
		t.Fatal(err)
	}
	// Activation 2 sees B first: must stay unarmed.
	var acc bool
	st2, acc, err = m.Advance(st2, c.ids["B"], c.eval)
	if err != nil || acc {
		t.Fatalf("activation 2 accepted prematurely")
	}
	_, acc, err = m.Advance(st1, c.ids["B"], c.eval)
	if err != nil || !acc {
		t.Fatalf("activation 1 should fire: acc=%v err=%v", acc, err)
	}
	_, acc, err = m.Advance(st2, c.ids["B"], c.eval)
	if err != nil || acc {
		t.Fatalf("activation 2 should still be unarmed")
	}
}
