// Package fsm compiles Ode event expressions into the extended finite
// state machines of paper §5.1 and executes them.
//
// The construction is a position (Glushkov) automaton over the desugared
// expression, determinized by subset construction. Masks extend the
// machinery exactly as §5.1.2 describes: a mask occurrence becomes a
// pseudo-position whose "symbol" is the pseudo-event True; a DFA state
// whose candidate set contains a pending mask position is a *mask state*
// (the states marked with "*" in the paper's Figure 1). A mask state does
// not wait for external events: the run-time evaluates the mask predicate
// and feeds the resulting True/False pseudo-event to the machine, possibly
// cascading through several mask states before quiescing (§5.4.5 step b).
// Pseudo-events are consumed only by mask positions; every other candidate
// position is carried through unchanged, which is what produces Figure 1's
// "False → state 0" edge.
//
// Per §5.4.3, an event with no transition from the current state is
// ignored (the machine stays put). This both keeps transition lists sparse
// and lets base-class triggers ignore derived-class events.
package fsm

import (
	"fmt"
	"sort"
	"strings"

	"ode/internal/event"
	"ode/internal/eventexpr"
)

// NoMask marks a state with no mask to evaluate (§5.4.3's NoMask).
const NoMask = -1

// Dead is the sentinel for "no successor": returned only inside anchored
// machines, where a mismatching event kills the match permanently. The
// dead state is a real state with no transitions.
//
// Transition is one entry of a state's sparse transition list (§5.4.3):
// when Event is posted in the owning state, move to Next.
type Transition struct {
	Event event.ID
	Next  int32
}

// State is one state of a compiled machine, mirroring the paper's State
// class (§5.4.3): a state number (its index), an accept flag, the mask to
// evaluate (or NoMask), and the transition list. Mask states additionally
// carry the two pseudo-event successors.
type State struct {
	Accept bool
	// Mask is the index into Machine.Masks of the predicate this state
	// must evaluate, or NoMask. A mask state has no Trans entries; it
	// consumes only the True/False pseudo-events.
	Mask int
	// OnTrue and OnFalse are the successors for the pseudo-events when
	// Mask != NoMask.
	OnTrue, OnFalse int32
	// AcceptOnTrue reports whether consuming the True pseudo-event
	// completes the expression (e.g. "after Buy & OverLimit" accepts
	// exactly when the mask holds).
	AcceptOnTrue bool
	// Trans is the sparse, Event-sorted transition list.
	Trans []Transition
}

// Machine is a compiled extended FSM. It is immutable after compilation
// and shared by all objects of the class that declared the trigger
// (§5.1.3): per-activation state is just an integer state number held in
// the TriggerState.
type Machine struct {
	States []State
	// Start is the initial state number (always 0 by construction).
	Start int32
	// Masks maps mask occurrence index → registered predicate name, in
	// left-to-right occurrence order.
	Masks []string
	// Alphabet is the effective alphabet the machine was compiled over
	// (sorted). Events outside it are ignored at run time.
	Alphabet []event.ID
	// Anchored records whether the source expression was ^-anchored
	// (§5.1.1), i.e. compiled without the (*any) prefix.
	Anchored bool
	// Source is the original expression text, for diagnostics.
	Source string
}

// Options configures compilation.
type Options struct {
	// Resolve maps an event reference in the expression to its unique
	// run-time ID (§5.2). It must reject events not declared by the class
	// (§4: all events of interest must be declared).
	Resolve func(n *eventexpr.Name) (event.ID, error)
	// Alphabet is the class's declared event alphabet (§5.1: "The basic
	// events included in the event declaration for a class constitute the
	// alphabet"). It is required whenever the expression uses "any",
	// including the implicit (*any) prefix of unanchored expressions.
	Alphabet []event.ID
	// MaskExists validates a mask predicate reference; nil accepts all.
	MaskExists func(name string) error
	// NoDominance disables the redundant-mask elimination rule during
	// subset construction (the rule that keeps Figure 1 at four states).
	// Without it the machine is still behaviourally correct — extra mask
	// states evaluate predicates whose outcome cannot matter — but
	// larger and slower. Exposed for the ablation benchmark only.
	NoDominance bool
}

// CompileError reports a semantic error found while compiling an event
// expression (unknown event, unknown mask, empty alphabet, …).
type CompileError struct {
	Source string
	Msg    string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("compile event expression %q: %s", e.Source, e.Msg)
}

// symKind classifies a position in the Glushkov construction.
type symKind uint8

const (
	symEvent symKind = iota // a specific basic event
	symAny                  // matches any event in the class alphabet
	symMask                 // a pending mask evaluation (pseudo-event True)
)

// position is one leaf occurrence of the desugared expression.
type position struct {
	kind symKind
	ev   event.ID // symEvent only
	mask int      // symMask only: occurrence index into Machine.Masks
}

// builder accumulates Glushkov construction state.
type builder struct {
	opts   Options
	src    string
	pos    []position
	follow [][]int32
	masks  []string
	err    error
}

// glu is the nullable/first/last triple computed bottom-up.
type glu struct {
	nullable    bool
	first, last []int32
}

// Compile translates a parsed event expression into an extended FSM.
// Unless the expression is anchored, (*any) is prepended per §5.1.1 so the
// machine searches for matching subsequences anywhere in the event stream.
func Compile(p *eventexpr.Parsed, opts Options) (*Machine, error) {
	b := &builder{opts: opts, src: p.Source}
	expr := eventexpr.Desugar(p.Expr)
	if !p.Anchored {
		expr = &eventexpr.Seq{Left: &eventexpr.Star{Sub: &eventexpr.Any{}}, Right: expr}
	}
	if usesAny(expr) && len(opts.Alphabet) == 0 {
		return nil, &CompileError{p.Source, "expression uses 'any' (or is unanchored) but the class alphabet is empty"}
	}
	g := b.build(expr)
	if b.err != nil {
		return nil, b.err
	}
	m := b.determinize(g, p.Anchored)
	m.Source = p.Source
	return m, nil
}

func usesAny(e eventexpr.Expr) bool {
	switch e := e.(type) {
	case *eventexpr.Any:
		return true
	case *eventexpr.Seq:
		return usesAny(e.Left) || usesAny(e.Right)
	case *eventexpr.Or:
		return usesAny(e.Left) || usesAny(e.Right)
	case *eventexpr.Star:
		return usesAny(e.Sub)
	case *eventexpr.Mask:
		return usesAny(e.Sub)
	default:
		return false
	}
}

// addPos appends a new position and returns its index.
func (b *builder) addPos(p position) int32 {
	b.pos = append(b.pos, p)
	b.follow = append(b.follow, nil)
	return int32(len(b.pos) - 1)
}

// build runs the standard nullable/first/last/follow computation. Mask
// nodes are treated as Seq(Sub, maskLeaf): the mask must be evaluated
// after the sub-expression completes, so the mask position follows Sub's
// last positions.
func (b *builder) build(e eventexpr.Expr) glu {
	switch e := e.(type) {
	case *eventexpr.Name:
		id, err := b.opts.Resolve(e)
		if err != nil && b.err == nil {
			b.err = &CompileError{b.src, err.Error()}
		}
		i := b.addPos(position{kind: symEvent, ev: id})
		return glu{false, []int32{i}, []int32{i}}
	case *eventexpr.Any:
		i := b.addPos(position{kind: symAny})
		return glu{false, []int32{i}, []int32{i}}
	case *eventexpr.Seq:
		l := b.build(e.Left)
		r := b.build(e.Right)
		return b.seq(l, r)
	case *eventexpr.Or:
		l := b.build(e.Left)
		r := b.build(e.Right)
		return glu{
			nullable: l.nullable || r.nullable,
			first:    union(l.first, r.first),
			last:     union(l.last, r.last),
		}
	case *eventexpr.Star:
		s := b.build(e.Sub)
		for _, p := range s.last {
			b.follow[p] = union(b.follow[p], s.first)
		}
		return glu{true, s.first, s.last}
	case *eventexpr.Mask:
		s := b.build(e.Sub)
		if b.opts.MaskExists != nil {
			if err := b.opts.MaskExists(e.Name); err != nil && b.err == nil {
				b.err = &CompileError{b.src, err.Error()}
			}
		}
		occ := len(b.masks)
		b.masks = append(b.masks, e.Name)
		i := b.addPos(position{kind: symMask, mask: occ})
		leaf := glu{false, []int32{i}, []int32{i}}
		return b.seq(s, leaf)
	default:
		// Relative was desugared; anything else is a bug.
		panic(fmt.Sprintf("fsm: unexpected node %T after desugaring", e))
	}
}

// seq composes two glu values as a sequence, updating follow sets.
func (b *builder) seq(l, r glu) glu {
	for _, p := range l.last {
		b.follow[p] = union(b.follow[p], r.first)
	}
	g := glu{nullable: l.nullable && r.nullable}
	if l.nullable {
		g.first = union(l.first, r.first)
	} else {
		g.first = l.first
	}
	if r.nullable {
		g.last = union(l.last, r.last)
	} else {
		g.last = r.last
	}
	return g
}

// union merges two sorted position sets.
func union(a, c []int32) []int32 {
	out := make([]int32, 0, len(a)+len(c))
	i, j := 0, 0
	for i < len(a) && j < len(c) {
		switch {
		case a[i] < c[j]:
			out = append(out, a[i])
			i++
		case a[i] > c[j]:
			out = append(out, c[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, c[j:]...)
	return out
}

// dfaKey identifies a DFA state: candidate position set + accept flag.
type dfaKey string

func makeKey(set []int32, accept bool) dfaKey {
	var sb strings.Builder
	if accept {
		sb.WriteByte('A')
	}
	for _, p := range set {
		fmt.Fprintf(&sb, ".%d", p)
	}
	return dfaKey(sb.String())
}

// determinize runs subset construction over candidate-position sets. A DFA
// state's set holds the positions that may consume the *next* symbol;
// the accept flag records whether the consumption that entered the state
// completed the expression.
func (b *builder) determinize(g glu, anchored bool) *Machine {
	lastSet := make(map[int32]bool, len(g.last))
	for _, p := range g.last {
		lastSet[p] = true
	}

	// Effective alphabet: every event mentioned in the expression plus
	// the whole class alphabet when any-positions exist — and also for
	// anchored machines, where §5.1.1's "nothing ignored" means every
	// declared event must participate (killing the match if unmatched)
	// rather than being skipped.
	alpha := map[event.ID]bool{}
	hasAny := false
	for _, p := range b.pos {
		switch p.kind {
		case symEvent:
			alpha[p.ev] = true
		case symAny:
			hasAny = true
		}
	}
	if hasAny || anchored {
		for _, id := range b.opts.Alphabet {
			alpha[id] = true
		}
	}
	alphabet := make([]event.ID, 0, len(alpha))
	for id := range alpha {
		alphabet = append(alphabet, id)
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })

	m := &Machine{Masks: b.masks, Alphabet: alphabet, Anchored: anchored}

	// normalize drops redundant mask positions: a pending mask whose
	// entire follow set is already a candidate, and whose consumption
	// cannot itself accept, changes nothing whichever way it evaluates.
	// This is what keeps Figure 1 at four states instead of spawning a
	// second (behaviourally identical) mask state from state 2.
	normalize := func(set []int32) []int32 {
		if b.opts.NoDominance {
			return set
		}
		out := set
		for _, p := range set {
			if b.pos[p].kind != symMask || lastSet[p] {
				continue
			}
			if subset(b.follow[p], out) {
				out = remove(out, p)
			}
		}
		return out
	}

	states := make(map[dfaKey]int32)
	var sets [][]int32
	var work []int32

	intern := func(set []int32, accept bool) int32 {
		k := makeKey(set, accept)
		if id, ok := states[k]; ok {
			return id
		}
		id := int32(len(m.States))
		states[k] = id
		m.States = append(m.States, State{Accept: accept, Mask: NoMask, OnTrue: -1, OnFalse: -1})
		sets = append(sets, set)
		work = append(work, id)
		return id
	}

	start := intern(normalize(g.first), g.nullable)
	m.Start = start

	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		set := sets[id]

		// Pending masks? The state becomes a mask state evaluating the
		// lowest-numbered occurrence (§5.4.3: one MaskFunction per state;
		// several pending masks serialize into a chain of mask states).
		maskPos := int32(-1)
		for _, p := range set {
			if b.pos[p].kind == symMask {
				if maskPos < 0 || b.pos[p].mask < b.pos[maskPos].mask {
					maskPos = p
				}
			}
		}
		if maskPos >= 0 {
			trueSet := normalize(union(remove(set, maskPos), b.follow[maskPos]))
			falseSet := normalize(remove(set, maskPos))
			// Note: the accept flag of the True successor reflects the
			// pseudo-event consumption (a mask position can complete the
			// expression, as in "after Buy & OverLimit"); the run-time
			// keeps a sticky "accepted during this posting" flag so that
			// a basic-event accept is not lost while the cascade resolves
			// (§5.4.5 footnote 5: at most one firing per posting).
			onTrue := intern(trueSet, lastSet[maskPos])
			onFalse := intern(falseSet, false)
			st := &m.States[id] // take after intern: it may grow the slice
			st.Mask = b.pos[maskPos].mask
			st.AcceptOnTrue = lastSet[maskPos]
			st.OnTrue = onTrue
			st.OnFalse = onFalse
			continue
		}

		// Ordinary state: one transition per alphabet symbol with a
		// non-empty move. Anchored machines route dead moves to an
		// explicit empty state; unanchored machines always retain the
		// (*any)-prefix position, so moves are never empty.
		if len(set) == 0 {
			continue // dead state: no transitions, every event ignored
		}
		var trans []Transition
		for _, a := range alphabet {
			var next []int32
			accept := false
			for _, p := range set {
				pp := b.pos[p]
				if pp.kind == symMask {
					continue // masks never consume basic events
				}
				if pp.kind == symAny || pp.ev == a {
					next = union(next, b.follow[p])
					if lastSet[p] {
						accept = true
					}
				}
			}
			if len(next) == 0 && !accept {
				if !anchored {
					continue // cannot happen; defensive
				}
				dead := intern(nil, false)
				trans = append(trans, Transition{a, dead})
				continue
			}
			nid := intern(normalize(next), accept)
			trans = append(trans, Transition{a, nid})
		}
		m.States[id].Trans = trans
	}
	return m
}

// subset reports whether every element of a (sorted) is in c (sorted).
func subset(a, c []int32) bool {
	j := 0
	for _, x := range a {
		for j < len(c) && c[j] < x {
			j++
		}
		if j >= len(c) || c[j] != x {
			return false
		}
	}
	return true
}

// remove returns set without p (set is sorted; result is a fresh slice).
func remove(set []int32, p int32) []int32 {
	out := make([]int32, 0, len(set)-1)
	for _, x := range set {
		if x != p {
			out = append(out, x)
		}
	}
	return out
}

// NumStates reports the number of DFA states.
func (m *Machine) NumStates() int { return len(m.States) }

// move performs one raw transition on a basic event, honouring the
// ignore-unknown rule of §5.4.3. It must not be called on a mask state.
func (m *Machine) move(state int32, ev event.ID) int32 {
	trans := m.States[state].Trans
	// Binary search: transition lists are sorted by construction
	// (alphabet iterated in sorted order).
	lo, hi := 0, len(trans)
	for lo < hi {
		mid := (lo + hi) / 2
		if trans[mid].Event < ev {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(trans) && trans[lo].Event == ev {
		return trans[lo].Next
	}
	return state // ignored: stay (§5.4.3)
}

// MaskEval evaluates a named mask predicate for a particular trigger
// activation. It is supplied by the trigger engine when advancing.
type MaskEval func(maskName string) (bool, error)

// TraceFn observes each raw transition taken while advancing: first the
// basic-event move (mask == "", outcome unused), then one call per
// mask-cascade step with the evaluated predicate's name and outcome (the
// True/False pseudo-event of §5.1.2). An ignored event produces no
// calls. Supplied by the observability layer for sampled firing traces.
type TraceFn func(from, to int32, mask string, outcome bool)

// Advance feeds one basic event to the machine from the given state and
// resolves any resulting mask cascade to quiescence (§5.4.5 steps a–c).
// It returns the quiesced state and whether an accept state was reached at
// any point during this posting (the sticky accept of footnote 5).
func (m *Machine) Advance(state int32, ev event.ID, eval MaskEval) (next int32, accepted bool, err error) {
	return m.AdvanceTraced(state, ev, eval, nil)
}

// AdvanceTraced is Advance with an optional transition observer; trace
// may be nil, which makes it exactly Advance.
func (m *Machine) AdvanceTraced(state int32, ev event.ID, eval MaskEval, trace TraceFn) (next int32, accepted bool, err error) {
	if int(state) < 0 || int(state) >= len(m.States) {
		return state, false, fmt.Errorf("fsm: state %d out of range [0,%d)", state, len(m.States))
	}
	if m.States[state].Mask != NoMask {
		return state, false, fmt.Errorf("fsm: Advance called on unquiesced mask state %d", state)
	}
	cur := m.move(state, ev)
	if cur == state && !m.hasTransition(state, ev) {
		// Event ignored entirely: no state change, no mask cascade, no
		// accept — and, importantly for the engine, no write to the
		// trigger state is needed.
		return state, false, nil
	}
	if trace != nil {
		trace(state, cur, "", false)
	}
	accepted = m.States[cur].Accept
	// Mask cascade: "Potentially, multiple mask events must be posted
	// before the system quiesces" (§5.4.5).
	for m.States[cur].Mask != NoMask {
		st := m.States[cur]
		v, err := eval(m.Masks[st.Mask])
		if err != nil {
			return cur, accepted, fmt.Errorf("fsm: mask %q: %w", m.Masks[st.Mask], err)
		}
		from := cur
		if v {
			cur = st.OnTrue
		} else {
			cur = st.OnFalse
		}
		if trace != nil {
			trace(from, cur, m.Masks[st.Mask], v)
		}
		if m.States[cur].Accept {
			accepted = true
		}
	}
	return cur, accepted, nil
}

// Settle resolves a mask cascade starting at state without consuming a
// basic event. It is needed at trigger activation when the expression's
// first position is a mask (e.g. "(*A & m), B" evaluates m immediately).
// It returns the quiesced state and whether an accept state was reached
// during the cascade.
func (m *Machine) Settle(state int32, eval MaskEval) (int32, bool, error) {
	if int(state) < 0 || int(state) >= len(m.States) {
		return state, false, fmt.Errorf("fsm: state %d out of range [0,%d)", state, len(m.States))
	}
	cur := state
	accepted := m.States[cur].Accept
	for m.States[cur].Mask != NoMask {
		st := m.States[cur]
		v, err := eval(m.Masks[st.Mask])
		if err != nil {
			return cur, accepted, fmt.Errorf("fsm: mask %q: %w", m.Masks[st.Mask], err)
		}
		if v {
			cur = st.OnTrue
		} else {
			cur = st.OnFalse
		}
		if m.States[cur].Accept {
			accepted = true
		}
	}
	return cur, accepted, nil
}

// hasTransition reports whether state has an explicit transition on ev.
func (m *Machine) hasTransition(state int32, ev event.ID) bool {
	for _, t := range m.States[state].Trans {
		if t.Event == ev {
			return true
		}
		if t.Event > ev {
			return false
		}
	}
	return false
}

// StartAccepts reports whether the machine accepts the empty stream (a
// nullable expression); the trigger engine checks this at activation.
func (m *Machine) StartAccepts() bool { return m.States[m.Start].Accept }

// Format renders the machine in a human-readable form used by tests and
// the ode-inspect tool, one state per line:
//
//	state 0 (start): after Buy -> 1, BigBuy -> 0, after PayBill -> 0
//	state 1 *mask MoreCred: True -> 2, False -> 0
//	state 3 (accept):
func (m *Machine) Format(describe func(event.ID) string) string {
	if describe == nil {
		describe = func(id event.ID) string { return fmt.Sprintf("e%d", id) }
	}
	var sb strings.Builder
	for i, st := range m.States {
		fmt.Fprintf(&sb, "state %d", i)
		if int32(i) == m.Start {
			sb.WriteString(" (start)")
		}
		if st.Accept {
			sb.WriteString(" (accept)")
		}
		if st.Mask != NoMask {
			fmt.Fprintf(&sb, " *mask %s: True -> %d, False -> %d", m.Masks[st.Mask], st.OnTrue, st.OnFalse)
		} else {
			sb.WriteString(":")
			for j, t := range st.Trans {
				if j > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, " %s -> %d", describe(t.Event), t.Next)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// MemoryFootprint estimates the bytes used by the sparse representation:
// per-state fixed cost plus per-transition cost. Used by experiment E6.
func (m *Machine) MemoryFootprint() int {
	const stateBytes = 32 // Accept+Mask+OnTrue+OnFalse+slice header, rounded
	const transBytes = 8  // event.ID + int32
	n := len(m.States) * stateBytes
	for _, st := range m.States {
		n += len(st.Trans) * transBytes
	}
	return n
}
