package fsm

import (
	"fmt"
	"sort"

	"ode/internal/event"
)

// DenseMachine is the two-dimensional-array transition representation the
// Ode implementors originally planned and then abandoned (§6): a matrix
// indexed by (current state, event column) holding next-state numbers.
// The paper reports it is "very space inefficient for sparse arrays" and
// that the per-class event renumbering it forces breaks down under
// multiple inheritance. It is kept here as the baseline for experiment E6.
//
// A DenseMachine answers exactly the same Advance queries as the sparse
// Machine it was built from; tests assert behavioural equivalence.
type DenseMachine struct {
	src *Machine
	// col maps an event ID to its matrix column; events outside the
	// alphabet have no column and are ignored.
	col map[event.ID]int
	// next[s*width+c] is the successor of state s on column c; a
	// self-transition encodes "ignored".
	next  []int32
	width int
}

// NewDense converts a sparse machine into the dense-matrix form.
func NewDense(m *Machine) *DenseMachine {
	d := &DenseMachine{
		src:   m,
		col:   make(map[event.ID]int, len(m.Alphabet)),
		width: len(m.Alphabet),
	}
	alpha := append([]event.ID(nil), m.Alphabet...)
	sort.Slice(alpha, func(i, j int) bool { return alpha[i] < alpha[j] })
	for i, id := range alpha {
		d.col[id] = i
	}
	d.next = make([]int32, len(m.States)*d.width)
	for s := range m.States {
		for c := 0; c < d.width; c++ {
			d.next[s*d.width+c] = int32(s) // default: ignored
		}
		for _, t := range m.States[s].Trans {
			d.next[s*d.width+d.col[t.Event]] = t.Next
		}
	}
	return d
}

// move performs one raw dense transition.
func (d *DenseMachine) move(state int32, ev event.ID) int32 {
	c, ok := d.col[ev]
	if !ok {
		return state // outside alphabet: ignored
	}
	return d.next[int(state)*d.width+c]
}

// Advance mirrors Machine.Advance on the dense representation.
func (d *DenseMachine) Advance(state int32, ev event.ID, eval MaskEval) (int32, bool, error) {
	m := d.src
	if int(state) < 0 || int(state) >= len(m.States) {
		return state, false, fmt.Errorf("fsm: state %d out of range [0,%d)", state, len(m.States))
	}
	cur := d.move(state, ev)
	if cur == state && !m.hasTransition(state, ev) {
		return state, false, nil
	}
	accepted := m.States[cur].Accept
	for m.States[cur].Mask != NoMask {
		st := m.States[cur]
		v, err := eval(m.Masks[st.Mask])
		if err != nil {
			return cur, accepted, fmt.Errorf("fsm: mask %q: %w", m.Masks[st.Mask], err)
		}
		if v {
			cur = st.OnTrue
		} else {
			cur = st.OnFalse
		}
		if m.States[cur].Accept {
			accepted = true
		}
	}
	return cur, accepted, nil
}

// MemoryFootprint estimates the bytes used by the dense matrix (E6): the
// full states × alphabet grid at 4 bytes per cell, plus the column map.
func (d *DenseMachine) MemoryFootprint() int {
	const cellBytes = 4
	const mapEntryBytes = 16 // event.ID key + int value + bucket overhead, rounded
	return len(d.next)*cellBytes + len(d.col)*mapEntryBytes
}

// Width reports the alphabet width of the matrix.
func (d *DenseMachine) Width() int { return d.width }

// DenseIndexed is the exact representation the Ode implementors first
// planned (§6): a two-dimensional array indexed directly by (state,
// event integer). With globally unique event IDs its width is the
// *application-wide* event count, not the class's — which is why the
// paper calls it "very space inefficient for sparse arrays" and why
// avoiding it with per-class ID reuse breaks under multiple inheritance.
// Experiment E6 measures its footprint against the sparse lists.
type DenseIndexed struct {
	src   *Machine
	next  []int32
	width int // maxEvent+1
}

// NewDenseIndexed builds the direct-indexed matrix; maxEvent is the
// largest event ID assigned anywhere in the application.
func NewDenseIndexed(m *Machine, maxEvent event.ID) *DenseIndexed {
	d := &DenseIndexed{src: m, width: int(maxEvent) + 1}
	d.next = make([]int32, len(m.States)*d.width)
	for s := range m.States {
		for c := 0; c < d.width; c++ {
			d.next[s*d.width+c] = int32(s) // default: ignored
		}
		for _, t := range m.States[s].Trans {
			d.next[s*d.width+int(t.Event)] = t.Next
		}
	}
	return d
}

// move performs one raw direct-indexed transition.
func (d *DenseIndexed) move(state int32, ev event.ID) int32 {
	if int(ev) >= d.width {
		return state
	}
	return d.next[int(state)*d.width+int(ev)]
}

// Advance mirrors Machine.Advance on the direct-indexed matrix.
func (d *DenseIndexed) Advance(state int32, ev event.ID, eval MaskEval) (int32, bool, error) {
	m := d.src
	if int(state) < 0 || int(state) >= len(m.States) {
		return state, false, fmt.Errorf("fsm: state %d out of range [0,%d)", state, len(m.States))
	}
	cur := d.move(state, ev)
	if cur == state && !m.hasTransition(state, ev) {
		return state, false, nil
	}
	accepted := m.States[cur].Accept
	for m.States[cur].Mask != NoMask {
		st := m.States[cur]
		v, err := eval(m.Masks[st.Mask])
		if err != nil {
			return cur, accepted, fmt.Errorf("fsm: mask %q: %w", m.Masks[st.Mask], err)
		}
		if v {
			cur = st.OnTrue
		} else {
			cur = st.OnFalse
		}
		if m.States[cur].Accept {
			accepted = true
		}
	}
	return cur, accepted, nil
}

// MemoryFootprint reports the matrix bytes (4 per cell, no map needed).
func (d *DenseIndexed) MemoryFootprint() int { return len(d.next) * 4 }
