package fsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ode/internal/event"
	"ode/internal/eventexpr"
)

// TestDominanceRuleShrinksFigure1 is the ablation for the redundant-mask
// elimination rule (DESIGN.md §5): without it, the AutoRaiseLimit machine
// grows beyond Figure 1's four states (the armed region keeps spawning
// behaviourally-irrelevant mask states); with it, the paper's machine is
// reproduced exactly.
func TestDominanceRuleShrinksFigure1(t *testing.T) {
	c := credCardClass()
	src := "relative((after Buy & MoreCred()), after PayBill)"
	with := c.compile(t, src)

	opts := c.options()
	opts.NoDominance = true
	without, err := Compile(eventexpr.MustParse(src), opts)
	if err != nil {
		t.Fatal(err)
	}
	if with.NumStates() != 4 {
		t.Fatalf("with dominance: %d states, want 4", with.NumStates())
	}
	if without.NumStates() <= with.NumStates() {
		t.Fatalf("ablation: without dominance %d states, with %d — the rule should shrink the machine",
			without.NumStates(), with.NumStates())
	}
	t.Logf("Figure 1 machine: %d states with dominance, %d without", with.NumStates(), without.NumStates())
}

// TestDominanceBehaviourEquivalence: the rule is a pure optimization —
// both machines accept identically on every stream (with masks held
// constant per posting, which is how the engine evaluates them).
func TestDominanceBehaviourEquivalence(t *testing.T) {
	srcs := []string{
		"relative((after Buy & MoreCred()), after PayBill)",
		"after Buy & OverLimit",
		"(after Buy & MoreCred()) || (after PayBill & OverLimit)",
		"*(after Buy & MoreCred()), BigBuy",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := credCardClass()
		c.masks["MoreCred"] = r.Intn(2) == 0
		c.masks["OverLimit"] = r.Intn(2) == 0
		src := srcs[r.Intn(len(srcs))]

		with := c.compile(t, src)
		opts := c.options()
		opts.NoDominance = true
		without, err := Compile(eventexpr.MustParse(src), opts)
		if err != nil {
			t.Fatal(err)
		}

		evs := []event.ID{c.ids["BigBuy"], c.ids["after PayBill"], c.ids["after Buy"]}
		s1, s2 := with.Start, without.Start
		for i := 0; i < 40; i++ {
			if r.Intn(8) == 0 {
				c.masks["MoreCred"] = !c.masks["MoreCred"]
			}
			ev := evs[r.Intn(len(evs))]
			n1, a1, err1 := with.Advance(s1, ev, c.eval)
			n2, a2, err2 := without.Advance(s2, ev, c.eval)
			if (err1 == nil) != (err2 == nil) || a1 != a2 {
				t.Logf("%q step %d: with=(%d,%v,%v) without=(%d,%v,%v)", src, i, n1, a1, err1, n2, a2, err2)
				return false
			}
			s1, s2 = n1, n2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDominanceOn/Off measure the advance cost of the two machines
// on the Figure 1 expression — the ablation's runtime side.
func benchDominance(b *testing.B, noDominance bool) {
	c := credCardClass()
	c.masks["MoreCred"] = true
	opts := c.options()
	opts.NoDominance = noDominance
	m, err := Compile(eventexpr.MustParse("relative((after Buy & MoreCred()), after PayBill)"), opts)
	if err != nil {
		b.Fatal(err)
	}
	evs := []event.ID{c.ids["BigBuy"], c.ids["after PayBill"], c.ids["after Buy"]}
	eval := func(string) (bool, error) { return true, nil }
	st := m.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, _ = m.Advance(st, evs[i%3], eval)
	}
}

func BenchmarkDominanceOn(b *testing.B)  { benchDominance(b, false) }
func BenchmarkDominanceOff(b *testing.B) { benchDominance(b, true) }

// TestSettle covers the activation-time mask resolution helper.
func TestSettle(t *testing.T) {
	c := newTestClass(event.User("A"), event.User("B"))
	c.masks["m"] = true
	// ^(*A & m), B: the start state is a mask state (Sub is nullable).
	m := c.compile(t, "^(*A & m), B")
	if m.States[m.Start].Mask == NoMask {
		t.Skip("construction did not yield a mask start state for this expression")
	}
	settled, accepted, err := m.Settle(m.Start, c.eval)
	if err != nil {
		t.Fatal(err)
	}
	if m.States[settled].Mask != NoMask {
		t.Fatal("Settle left a pending mask")
	}
	if accepted {
		t.Fatal("Settle accepted without consuming input")
	}
	// Out-of-range state errors.
	if _, _, err := m.Settle(99, c.eval); err == nil {
		t.Fatal("Settle(out-of-range) succeeded")
	}
	// Settling a non-mask state is a no-op.
	if s2, _, err := m.Settle(settled, c.eval); err != nil || s2 != settled {
		t.Fatalf("no-op settle: %d, %v", s2, err)
	}
}
