// Package antientropy implements rateless set reconciliation for the
// replication layer: coded symbols over (OID, object-digest) items in
// the style of rateless invertible Bloom lookup tables (Yang et al.,
// "Practical Rateless Set Reconciliation", SIGCOMM 2024), plus an
// order-independent digest walk for cheap steady-state auditing.
//
// The protocol is symmetric and rateless: the sender streams coded
// symbols one at a time and the receiver subtracts its own locally
// generated symbol stream, leaving a sketch of the symmetric
// difference. Peeling the sketch recovers exactly the items present on
// one side but not the other, so communication is proportional to the
// drift between the two stores, never to their size. A modified object
// shows up as one remote-only and one local-only item sharing an OID;
// a created or freed object shows up on one side only.
//
// The package is self-contained (stdlib only) so both the storage
// layer and the wire layer can depend on it.
package antientropy

import (
	"container/heap"
	"errors"
	"math"
)

// Item is one set element: an object identifier paired with a digest of
// the object's durable image. Two stores are in sync exactly when their
// item sets are equal.
type Item struct {
	Key    uint64 // OID
	Digest uint64 // content digest of the object image (see Digest)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// permutation used for item checksums and mapping seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash returns the item's checksum. It doubles as the seed of the
// item's index mapping, so both sides derive identical symbol
// placements without exchanging anything beyond the symbols themselves.
func (it Item) Hash() uint64 {
	return mix64(mix64(it.Key^0x9e3779b97f4a7c15) ^ it.Digest)
}

// Digest fingerprints an object image with FNV-1a 64. It is the
// canonical content digest used for Item.Digest throughout the repo.
func Digest(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// CodedSymbol is one cell of the rateless sketch: the signed count,
// XOR-folds of the member items, and the XOR of their checksums. JSON
// tags are single letters because symbols travel in batches on the
// replication wire.
type CodedSymbol struct {
	Count int64  `json:"c"`
	Key   uint64 `json:"k"`
	Dig   uint64 `json:"d"`
	Check uint64 `json:"h"`
}

// apply folds item into the symbol with the given direction (+1 add,
// -1 remove). XOR is its own inverse, so only Count is signed.
func (s *CodedSymbol) apply(it Item, dir int64) {
	s.Count += dir
	s.Key ^= it.Key
	s.Dig ^= it.Digest
	s.Check ^= it.Hash()
}

// zero reports whether the symbol holds no residue. A stream of pure
// difference symbols that are all zero means the sets matched.
func (s CodedSymbol) zero() bool {
	return s.Count == 0 && s.Key == 0 && s.Dig == 0 && s.Check == 0
}

// mapping generates the (strictly increasing) sequence of symbol
// indices an item participates in. Every item lands in index 0; the
// gaps then grow so that index i holds each item with probability
// ~1/(1+i/2), giving the sketch its rateless soliton-like shape. The
// update rule is the one from the riblt reference design.
type mapping struct {
	prng    uint64
	lastIdx uint64
}

func newMapping(seed uint64) mapping { return mapping{prng: seed} }

// idxSat caps index growth far above any reachable symbol count so the
// gap arithmetic can never wrap uint64 (a wrapped index would re-enter
// the live sketch range and corrupt it).
const idxSat = uint64(1) << 62

// next advances to the item's next index after lastIdx.
func (m *mapping) next() uint64 {
	r := m.prng * 0xda942042e4dd58b5
	m.prng = r
	if m.lastIdx >= idxSat {
		// Saturated region: indices this large are never visited; just
		// stay strictly increasing.
		m.lastIdx++
		return m.lastIdx
	}
	f := (float64(m.lastIdx) + 1.5) * (float64(uint64(1)<<32)/math.Sqrt(float64(r)+1) - 1)
	var gap uint64
	if f >= float64(idxSat) {
		gap = idxSat
	} else {
		gap = uint64(math.Ceil(f))
		if gap == 0 {
			// Degenerate draw (probability ~2^-32): applying an item
			// twice to one index would XOR it out of the sketch, so
			// force progress instead.
			gap = 1
		}
	}
	m.lastIdx += gap
	return m.lastIdx
}

// encEntry is one item queued in the encoder, keyed by the next symbol
// index it must be folded into.
type encEntry struct {
	item    Item
	mapping mapping
	nextIdx uint64
}

type encHeap []encEntry

func (h encHeap) Len() int           { return len(h) }
func (h encHeap) Less(i, j int) bool { return h[i].nextIdx < h[j].nextIdx }
func (h encHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *encHeap) Push(x any)        { *h = append(*h, x.(encEntry)) }
func (h *encHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h encHeap) peekIdx() uint64    { return h[0].nextIdx }
func (h encHeap) empty() bool        { return len(h) == 0 }

// Encoder produces the infinite coded-symbol stream for a fixed item
// set, one symbol per Next call, lazily: a min-heap orders items by the
// next index they appear in, so producing symbol i touches only the
// items mapped there.
type Encoder struct {
	heap encHeap
	next uint64 // index of the symbol the next Next() call returns
}

// NewEncoder builds an encoder over the given items. The slice is not
// retained.
func NewEncoder(items []Item) *Encoder {
	e := &Encoder{heap: make(encHeap, 0, len(items))}
	for _, it := range items {
		// Every item participates in symbol 0.
		e.heap = append(e.heap, encEntry{item: it, mapping: newMapping(it.Hash())})
	}
	heap.Init(&e.heap)
	return e
}

// Next returns the coded symbol at the next sequential index.
func (e *Encoder) Next() CodedSymbol {
	var s CodedSymbol
	for !e.heap.empty() && e.heap.peekIdx() == e.next {
		ent := e.heap[0]
		s.apply(ent.item, 1)
		ent.nextIdx = ent.mapping.next()
		e.heap[0] = ent
		heap.Fix(&e.heap, 0)
	}
	e.next++
	return s
}

// Produced returns how many symbols the encoder has emitted so far.
func (e *Encoder) Produced() uint64 { return e.next }

// ErrDecodeOverrun is returned by AddSymbols when the decoder consumed
// far more symbols than any plausible difference would need, signalling
// that the caller should fall back to a full transfer.
var ErrDecodeOverrun = errors.New("antientropy: symbol budget exhausted without decoding")

// peeledEntry remembers a decoded item so its contribution can be
// subtracted from difference symbols that arrive after it was peeled.
type peeledEntry struct {
	item    Item
	mapping mapping
	nextIdx uint64
	dir     int64
}

type peeledHeap []peeledEntry

func (h peeledHeap) Len() int           { return len(h) }
func (h peeledHeap) Less(i, j int) bool { return h[i].nextIdx < h[j].nextIdx }
func (h peeledHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *peeledHeap) Push(x any)        { *h = append(*h, x.(peeledEntry)) }
func (h *peeledHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Decoder consumes a remote symbol stream, subtracts the local stream,
// and peels the residue into the symmetric difference.
type Decoder struct {
	local   *Encoder
	syms    []CodedSymbol
	pending []uint64 // indices to re-examine for peeling
	peeled  peeledHeap

	remote []Item // present remotely, absent locally
	gone   []Item // present locally, absent remotely

	nonzero int // count of non-zero difference symbols
}

// NewDecoder builds a decoder whose local side is the given item set.
func NewDecoder(local []Item) *Decoder {
	return &Decoder{local: NewEncoder(local)}
}

// AddSymbol ingests the next remote coded symbol (symbols must arrive
// in index order, starting at 0) and peels whatever becomes peelable.
func (d *Decoder) AddSymbol(cs CodedSymbol) {
	ls := d.local.Next()
	diff := CodedSymbol{
		Count: cs.Count - ls.Count,
		Key:   cs.Key ^ ls.Key,
		Dig:   cs.Dig ^ ls.Dig,
		Check: cs.Check ^ ls.Check,
	}
	// Items decoded earlier still contribute to later symbols of
	// whichever stream carried them; cancel them out as their mapping
	// sequences reach this index.
	idx := uint64(len(d.syms))
	for len(d.peeled) > 0 && d.peeled[0].nextIdx == idx {
		ent := d.peeled[0]
		diff.apply(ent.item, -ent.dir)
		ent.nextIdx = ent.mapping.next()
		d.peeled[0] = ent
		heap.Fix(&d.peeled, 0)
	}
	d.syms = append(d.syms, diff)
	if !diff.zero() {
		d.nonzero++
	}
	d.pending = append(d.pending, idx)
	d.peel()
}

// peel drains the pending worklist: any difference symbol holding
// exactly one item (count ±1, checksum matching) is decoded, and the
// decoded item is subtracted from every index it maps to, which may in
// turn expose new singletons.
func (d *Decoder) peel() {
	for len(d.pending) > 0 {
		i := d.pending[len(d.pending)-1]
		d.pending = d.pending[:len(d.pending)-1]
		s := d.syms[i]
		if s.Count != 1 && s.Count != -1 {
			continue
		}
		it := Item{Key: s.Key, Digest: s.Dig}
		if it.Hash() != s.Check {
			continue
		}
		dir := s.Count
		if dir == 1 {
			d.remote = append(d.remote, it)
		} else {
			d.gone = append(d.gone, it)
		}
		// Subtract the item from every symbol it participates in, then
		// park it on the peeled heap so future symbols get the same
		// treatment.
		m := newMapping(it.Hash())
		idx := uint64(0)
		for idx < uint64(len(d.syms)) {
			wasZero := d.syms[idx].zero()
			d.syms[idx].apply(it, -dir)
			nowZero := d.syms[idx].zero()
			if wasZero && !nowZero {
				d.nonzero++
			} else if !wasZero && nowZero {
				d.nonzero--
			}
			if !nowZero {
				d.pending = append(d.pending, idx)
			}
			idx = m.next()
		}
		heap.Push(&d.peeled, peeledEntry{item: it, mapping: m, nextIdx: idx, dir: dir})
	}
}

// Decoded reports whether the full symmetric difference has been
// recovered: at least one symbol seen and every difference symbol
// reduced to zero.
func (d *Decoder) Decoded() bool {
	return len(d.syms) > 0 && d.nonzero == 0
}

// Diff returns the decoded difference: items only the remote side has,
// and items only the local side has. Valid once Decoded() is true; the
// returned slices are owned by the decoder.
func (d *Decoder) Diff() (remoteOnly, localOnly []Item) {
	return d.remote, d.gone
}

// Consumed returns how many remote symbols the decoder has ingested.
func (d *Decoder) Consumed() uint64 { return d.local.Produced() }
