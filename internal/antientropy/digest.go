package antientropy

// SetDigest is an order-independent fingerprint of an item set: the
// cardinality plus the wrapping sum and XOR of the item checksums. Two
// equal sets always produce equal digests; a collision between
// different sets needs simultaneous sum and xor collisions at matching
// counts, which the splitmix-mixed checksums make vanishingly unlikely.
// It is the cheap first step of the digest walk: if roots match, no
// symbols need to flow at all.
type SetDigest struct {
	Count uint64 `json:"n"`
	Sum   uint64 `json:"s"`
	Xor   uint64 `json:"x"`
}

// Add folds one item into the digest.
func (d *SetDigest) Add(it Item) {
	h := it.Hash()
	d.Count++
	d.Sum += h
	d.Xor ^= h
}

// Equal reports whether two digests match.
func (d SetDigest) Equal(o SetDigest) bool {
	return d.Count == o.Count && d.Sum == o.Sum && d.Xor == o.Xor
}

// DigestSet fingerprints a whole item set.
func DigestSet(items []Item) SetDigest {
	var d SetDigest
	for _, it := range items {
		d.Add(it)
	}
	return d
}

// DigestBuckets partitions the item set into k buckets by the top bits
// of each item's checksum and fingerprints each bucket. Comparing the
// bucket vectors of two stores bounds where a difference lives and
// gives a cheap lower estimate of its size, which seeds the initial
// coded-symbol batch during reconciliation.
func DigestBuckets(items []Item, k int) []SetDigest {
	if k <= 0 {
		k = 1
	}
	out := make([]SetDigest, k)
	for _, it := range items {
		h := it.Hash()
		// Top bits are the best mixed; map them onto [0, k).
		b := int((h >> 32) * uint64(k) >> 32)
		out[b].Add(it)
	}
	return out
}

// DiffBuckets counts how many bucket digests differ between two walks
// of equal width. Mismatched widths count as all-different.
func DiffBuckets(a, b []SetDigest) int {
	if len(a) != len(b) {
		if len(a) > len(b) {
			return len(a)
		}
		return len(b)
	}
	n := 0
	for i := range a {
		if !a[i].Equal(b[i]) {
			n++
		}
	}
	return n
}
