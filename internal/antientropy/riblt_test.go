package antientropy

import (
	"fmt"
	"math/rand"
	"testing"
)

// synthSet builds n items with deterministic pseudo-random digests.
func synthSet(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: uint64(i + 1), Digest: rng.Uint64()}
	}
	return items
}

// reconcile runs an encoder over remote against a decoder over local
// and returns the decoded diff plus how many symbols it took.
func reconcile(t *testing.T, remote, local []Item, budget int) (remoteOnly, localOnly []Item, used int) {
	t.Helper()
	enc := NewEncoder(remote)
	dec := NewDecoder(local)
	for i := 0; i < budget; i++ {
		dec.AddSymbol(enc.Next())
		used++
		if dec.Decoded() {
			ro, lo := dec.Diff()
			return ro, lo, used
		}
	}
	t.Fatalf("did not decode within %d symbols", budget)
	return nil, nil, used
}

func asMap(items []Item) map[uint64]uint64 {
	m := make(map[uint64]uint64, len(items))
	for _, it := range items {
		m[it.Key] = it.Digest
	}
	return m
}

func TestReconcileIdenticalSets(t *testing.T) {
	base := synthSet(500, 1)
	ro, lo, used := reconcile(t, base, base, 8)
	if len(ro) != 0 || len(lo) != 0 {
		t.Fatalf("identical sets decoded diff: remote=%d local=%d", len(ro), len(lo))
	}
	if used != 1 {
		t.Fatalf("identical sets took %d symbols, want 1", used)
	}
}

func TestReconcileEmptySides(t *testing.T) {
	base := synthSet(40, 2)
	// Remote has everything, local empty: pure bootstrap.
	ro, lo, _ := reconcile(t, base, nil, 4096)
	if len(ro) != len(base) || len(lo) != 0 {
		t.Fatalf("remote-only decode got %d/%d", len(ro), len(lo))
	}
	// Local has everything, remote empty.
	ro, lo, _ = reconcile(t, nil, base, 4096)
	if len(ro) != 0 || len(lo) != len(base) {
		t.Fatalf("local-only decode got %d/%d", len(ro), len(lo))
	}
}

// TestReconcileDiffs checks exact diff recovery across a grid of set
// sizes, diff sizes, and seeds: creations (remote-only), deletions
// (local-only), and modifications (one of each sharing an OID).
func TestReconcileDiffs(t *testing.T) {
	for _, n := range []int{10, 200, 2000} {
		for _, d := range []int{1, 3, 17, 64} {
			if d*3 > n {
				continue
			}
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("n%d_d%d_s%d", n, d, seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed*7919 + int64(n+d)))
					remote := synthSet(n, seed)
					local := make([]Item, len(remote))
					copy(local, remote)

					wantRemote := map[Item]bool{}
					wantLocal := map[Item]bool{}
					// d modifications: local holds a stale digest.
					for i := 0; i < d; i++ {
						stale := Item{Key: local[i].Key, Digest: rng.Uint64()}
						wantRemote[local[i]] = true
						wantLocal[stale] = true
						local[i] = stale
					}
					// d creations missing locally.
					local = local[:len(local)-d]
					for _, it := range remote[len(remote)-d:] {
						wantRemote[it] = true
					}
					// d deletions present only locally.
					for i := 0; i < d; i++ {
						extra := Item{Key: uint64(n + 1000 + i), Digest: rng.Uint64()}
						local = append(local, extra)
						wantLocal[extra] = true
					}

					ro, lo, used := reconcile(t, remote, local, 64*(3*d)+128)
					if len(ro) != len(wantRemote) || len(lo) != len(wantLocal) {
						t.Fatalf("diff sizes: remote %d want %d, local %d want %d",
							len(ro), len(wantRemote), len(lo), len(wantLocal))
					}
					for _, it := range ro {
						if !wantRemote[it] {
							t.Fatalf("unexpected remote-only item %+v", it)
						}
					}
					for _, it := range lo {
						if !wantLocal[it] {
							t.Fatalf("unexpected local-only item %+v", it)
						}
					}
					// Rateless promise: symbols consumed track the diff
					// (3d), not the set size n. Allow generous slack for
					// small diffs where the constant dominates.
					if d >= 16 && used > 6*3*d {
						t.Fatalf("used %d symbols for diff %d (overhead %.2fx)", used, 3*d, float64(used)/float64(3*d))
					}
				})
			}
		}
	}
}

// TestReconcileOverheadRatio pins the headline property: for a fixed
// moderate diff the symbol count stays flat as the set size grows 100x.
func TestReconcileOverheadRatio(t *testing.T) {
	const d = 32
	usedAt := func(n int) int {
		remote := synthSet(n, 9)
		local := make([]Item, len(remote)-d)
		copy(local, remote[:len(remote)-d])
		_, _, used := reconcile(t, remote, local, 64*d+256)
		return used
	}
	small, large := usedAt(500), usedAt(50000)
	if large > 4*small+64 {
		t.Fatalf("symbol count scaled with set size: n=500 used %d, n=50000 used %d", small, large)
	}
}

func TestSetDigestWalk(t *testing.T) {
	a := synthSet(1000, 3)
	b := make([]Item, len(a))
	copy(b, a)

	if !DigestSet(a).Equal(DigestSet(b)) {
		t.Fatal("equal sets digest unequal")
	}
	// Order independence.
	rand.New(rand.NewSource(4)).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	if !DigestSet(a).Equal(DigestSet(b)) {
		t.Fatal("digest is order-dependent")
	}

	b[17].Digest ^= 1
	if DigestSet(a).Equal(DigestSet(b)) {
		t.Fatal("single-bit object change not caught by root digest")
	}
	ba, bb := DigestBuckets(a, 16), DigestBuckets(b, 16)
	if got := DiffBuckets(ba, bb); got < 1 || got > 2 {
		// One item changed digest: it leaves one bucket and enters
		// another (possibly the same one).
		t.Fatalf("DiffBuckets = %d, want 1 or 2", got)
	}
	if DiffBuckets(DigestBuckets(a, 16), DigestBuckets(a, 8)) != 16 {
		t.Fatal("mismatched widths must count as all-different")
	}
}

func TestDigestFNV(t *testing.T) {
	// FNV-1a 64 known-answer vectors.
	if got := Digest(nil); got != 14695981039346656037 {
		t.Fatalf("Digest(nil) = %d", got)
	}
	if got := Digest([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("Digest(a) = %#x", got)
	}
	if Digest([]byte("abc")) == Digest([]byte("acb")) {
		t.Fatal("digest ignores order")
	}
}

func TestMappingMonotonic(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		m := newMapping(mix64(seed))
		last := uint64(0)
		for i := 0; i < 100; i++ {
			nxt := m.next()
			if nxt <= last {
				t.Fatalf("seed %d: index not strictly increasing: %d after %d", seed, nxt, last)
			}
			last = nxt
		}
	}
}

func BenchmarkReconcile(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		for _, d := range []int{10, 100} {
			b.Run(fmt.Sprintf("n%d_d%d", n, d), func(b *testing.B) {
				remote := synthSet(n, 11)
				local := make([]Item, len(remote)-d)
				copy(local, remote[:len(remote)-d])
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					enc := NewEncoder(remote)
					dec := NewDecoder(local)
					for !dec.Decoded() {
						dec.AddSymbol(enc.Next())
					}
				}
			})
		}
	}
}
