package antientropy

import (
	"reflect"
	"testing"
)

func tagged(class uint32, keys ...uint64) []ClassItem {
	out := make([]ClassItem, 0, len(keys))
	for _, k := range keys {
		out = append(out, ClassItem{Item: Item{Key: k, Digest: Digest([]byte{byte(k), byte(class)})}, Class: class})
	}
	return out
}

// TestDigestClassesPartition: the partitioned digests are sorted by
// class, cover every item exactly once, and each class digest equals a
// direct DigestSet over that class's subset.
func TestDigestClassesPartition(t *testing.T) {
	items := append(append(tagged(3, 10, 11), tagged(1, 20, 21, 22)...), tagged(0, 1, 2)...)
	cds := DigestClasses(items)
	if len(cds) != 3 {
		t.Fatalf("got %d partitions, want 3", len(cds))
	}
	var total uint64
	for i, cd := range cds {
		if i > 0 && cds[i-1].Class >= cd.Class {
			t.Fatalf("partitions not sorted: %v", cds)
		}
		want := DigestSet(FilterClass(items, cd.Class))
		if !cd.Digest.Equal(want) {
			t.Fatalf("class %d digest %+v, want %+v", cd.Class, cd.Digest, want)
		}
		total += cd.Digest.Count
	}
	if total != uint64(len(items)) {
		t.Fatalf("partitions cover %d items, want %d", total, len(items))
	}
}

// TestDigestClassesOrderIndependent: permuting the inventory never
// changes the partitioned digests.
func TestDigestClassesOrderIndependent(t *testing.T) {
	items := append(tagged(1, 5, 6, 7), tagged(2, 8, 9)...)
	perm := []ClassItem{items[4], items[0], items[3], items[1], items[2]}
	if !reflect.DeepEqual(DigestClasses(items), DigestClasses(perm)) {
		t.Fatal("partitioned digests depend on inventory order")
	}
}

// TestDiffClassesIsolation: perturbing one class's subset flags exactly
// that class, leaving every other partition's digest untouched.
func TestDiffClassesIsolation(t *testing.T) {
	a := append(append(tagged(1, 10, 11), tagged(2, 20, 21)...), tagged(3, 30)...)
	b := append([]ClassItem(nil), a...)
	if got := DiffClasses(DigestClasses(a), DigestClasses(b)); len(got) != 0 {
		t.Fatalf("identical inventories diff as %v", got)
	}
	// Corrupt one class-2 item's content digest.
	b[2] = ClassItem{Item: Item{Key: b[2].Key, Digest: b[2].Digest ^ 0x5a}, Class: 2}
	if got := DiffClasses(DigestClasses(a), DigestClasses(b)); !reflect.DeepEqual(got, []uint32{2}) {
		t.Fatalf("diff = %v, want [2]", got)
	}
}

// TestDiffClassesMissingSide: a class present on only one side differs,
// in both directions; an empty partition on one side is not a diff.
func TestDiffClassesMissingSide(t *testing.T) {
	a := append(tagged(1, 10), tagged(4, 40, 41)...)
	b := tagged(1, 10)
	if got := DiffClasses(DigestClasses(a), DigestClasses(b)); !reflect.DeepEqual(got, []uint32{4}) {
		t.Fatalf("diff = %v, want [4]", got)
	}
	if got := DiffClasses(DigestClasses(b), DigestClasses(a)); !reflect.DeepEqual(got, []uint32{4}) {
		t.Fatalf("reverse diff = %v, want [4]", got)
	}
	// An explicit empty digest for class 4 equals class 4 being absent.
	withEmpty := append(DigestClasses(b), ClassDigest{Class: 4})
	if got := DiffClasses(withEmpty, DigestClasses(b)); len(got) != 0 {
		t.Fatalf("empty partition treated as divergence: %v", got)
	}
}

// TestFilterClassSubset: filtering yields exactly the class's items and
// an empty (non-nil usable) slice for an unknown class.
func TestFilterClassSubset(t *testing.T) {
	items := append(tagged(1, 10, 11), tagged(2, 20)...)
	got := FilterClass(items, 1)
	if len(got) != 2 || got[0].Key != 10 || got[1].Key != 11 {
		t.Fatalf("FilterClass(1) = %v", got)
	}
	if got := FilterClass(items, 9); len(got) != 0 {
		t.Fatalf("FilterClass(9) = %v, want empty", got)
	}
}
