package antientropy

import "sort"

// ClassItem is an inventory item tagged with the catalog class of the
// object it digests. Class 0 collects images without a decodable class
// envelope (system pages, foreign formats); real catalog classes start
// at 1, so 0 doubles as "unscoped" on the wire.
type ClassItem struct {
	Item
	Class uint32 `json:"c"`
}

// ClassDigest is one class's slice of a partitioned set digest.
type ClassDigest struct {
	Class  uint32    `json:"c"`
	Digest SetDigest `json:"d"`
}

// DigestClasses partitions a tagged inventory by class and fingerprints
// each partition, sorted by class ID. Two stores whose vectors match
// class-for-class hold identical inventories; a mismatch names exactly
// the classes worth reconciling, so an audit can scope its digest walk
// and symbol stream to one class instead of the whole store.
func DigestClasses(items []ClassItem) []ClassDigest {
	byClass := map[uint32]*SetDigest{}
	for _, it := range items {
		d := byClass[it.Class]
		if d == nil {
			d = &SetDigest{}
			byClass[it.Class] = d
		}
		d.Add(it.Item)
	}
	out := make([]ClassDigest, 0, len(byClass))
	for c, d := range byClass {
		out = append(out, ClassDigest{Class: c, Digest: *d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// FilterClass strips a tagged inventory down to one class's untagged
// items — the input a class-scoped reconciliation feeds its digest walk
// and coded-symbol stream. Both sides of an exchange must filter with
// the same class or the decoded difference is meaningless.
func FilterClass(items []ClassItem, class uint32) []Item {
	out := make([]Item, 0, len(items))
	for _, it := range items {
		if it.Class == class {
			out = append(out, it.Item)
		}
	}
	return out
}

// DiffClasses returns the class IDs whose digests differ between two
// partitioned walks, sorted. A class present on only one side counts as
// differing (its counterpart digest is the empty set).
func DiffClasses(a, b []ClassDigest) []uint32 {
	b2 := make(map[uint32]SetDigest, len(b))
	for _, cd := range b {
		b2[cd.Class] = cd.Digest
	}
	diff := map[uint32]bool{}
	for _, cd := range a {
		if !cd.Digest.Equal(b2[cd.Class]) {
			diff[cd.Class] = true
		}
		delete(b2, cd.Class)
	}
	for c, d := range b2 {
		if !d.Equal(SetDigest{}) {
			diff[c] = true
		}
	}
	out := make([]uint32, 0, len(diff))
	for c := range diff {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
