package ode_test

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"ode"
	"ode/internal/obs"
)

// TestObservabilityDocCoverage enforces the contract stated in package
// obs: every metric name registered by an open database, every trace step
// kind, and every JSON field of the trace schema must appear verbatim in
// docs/OBSERVABILITY.md. Adding a metric without documenting it fails CI.
func TestObservabilityDocCoverage(t *testing.T) {
	raw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("docs/OBSERVABILITY.md missing: %v", err)
	}
	doc := string(raw)

	db, _ := openAccountDB(t)
	for _, name := range db.Observability().Names() {
		if !strings.Contains(doc, name) {
			t.Errorf("metric %q is not documented in docs/OBSERVABILITY.md", name)
		}
	}
	for _, kind := range []string{
		obs.StepTransition, obs.StepMask, obs.StepFire,
		obs.StepCommitWait, obs.StepRetry, obs.StepActionStart, obs.StepActionEnd,
		obs.StepSnapshot,
	} {
		if !strings.Contains(doc, `"`+kind+`"`) {
			t.Errorf("trace step kind %q is not documented in docs/OBSERVABILITY.md", kind)
		}
	}
	for _, kind := range obs.IncidentKinds {
		if !strings.Contains(doc, `"`+kind+`"`) {
			t.Errorf("flight incident kind %q is not documented in docs/OBSERVABILITY.md", kind)
		}
	}
	for _, kind := range []string{
		obs.ChainTrace, obs.ChainIncident, obs.ChainHop, obs.ChainCompletion,
	} {
		if !strings.Contains(doc, `"`+kind+`"`) {
			t.Errorf("chain event kind %q is not documented in docs/OBSERVABILITY.md", kind)
		}
	}
	for _, op := range []string{"trace.chain", "trace.rate"} {
		if !strings.Contains(doc, "`"+op+"`") {
			t.Errorf("op %q is not documented in docs/OBSERVABILITY.md", op)
		}
	}
	for _, term := range []string{"Fleet observability", "E25", "BENCH_fleetobs.json"} {
		if !strings.Contains(doc, term) {
			t.Errorf("docs/OBSERVABILITY.md does not mention %q", term)
		}
	}
	for _, typ := range []reflect.Type{
		reflect.TypeOf(obs.Step{}),
		reflect.TypeOf(obs.TraceRecord{}),
		reflect.TypeOf(obs.IncidentRecord{}),
		reflect.TypeOf(obs.MetricValue{}),
		reflect.TypeOf(obs.Bucket{}),
		reflect.TypeOf(obs.ChainEvent{}),
		reflect.TypeOf(obs.ChainNode{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			name := strings.Split(tag, ",")[0]
			if name == "" || name == "-" {
				continue
			}
			if !strings.Contains(doc, "`"+name+"`") {
				t.Errorf("%s JSON field `%s` is not documented in docs/OBSERVABILITY.md", typ.Name(), name)
			}
		}
	}
}

// TestTraceEndToEnd fires the account triggers with sampling on and
// checks the recorded trace: FSM transitions, the §5.1.2 mask
// pseudo-event, coupling-mode dispatch, and the action bracket.
func TestTraceEndToEnd(t *testing.T) {
	db, ref := openAccountDB(t)
	db.Tracer().SetRate(1)

	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Deposit", 50.0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Overdraw: "after Withdraw & Overdrawn" accepts, BlockOverdraft
	// fires immediately and tabort-s the transaction.
	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, ref, "Withdraw", 100.0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ode.ErrAborted) {
		t.Fatalf("overdraft commit = %v, want ErrAborted", err)
	}

	var fired *obs.TraceRecord
	for _, rec := range db.Tracer().Snapshot() {
		for _, s := range rec.Steps {
			if s.Kind == obs.StepFire && s.Trigger == "BlockOverdraft" {
				r := rec
				fired = &r
			}
		}
	}
	if fired == nil {
		t.Fatalf("no trace contains a fire step for BlockOverdraft; traces: %+v", db.Tracer().Snapshot())
	}
	if !strings.Contains(fired.Event, "Withdraw") {
		t.Errorf("firing trace posted event = %q, want the Withdraw event", fired.Event)
	}
	if fired.OID != uint64(ref.OID()) {
		t.Errorf("trace OID = %d, want %d", fired.OID, ref.OID())
	}
	var sawTransition, sawMask, sawFire, sawStart, sawEnd bool
	last := int64(-1)
	for _, s := range fired.Steps {
		if s.TNs < last {
			t.Errorf("steps out of order: %d after %d", s.TNs, last)
		}
		last = s.TNs
		switch s.Kind {
		case obs.StepTransition:
			sawTransition = true
		case obs.StepMask:
			if s.Mask == "Overdrawn" && s.Event == "True" {
				sawMask = true
			}
		case obs.StepFire:
			if s.Trigger == "BlockOverdraft" {
				sawFire = true
				if s.Coupling != "immediate" {
					t.Errorf("fire coupling = %q, want immediate", s.Coupling)
				}
			}
		case obs.StepActionStart:
			sawStart = true
		case obs.StepActionEnd:
			sawEnd = true
		}
	}
	if !sawTransition || !sawMask || !sawFire || !sawStart || !sawEnd {
		t.Fatalf("trace missing steps (transition=%v mask=%v fire=%v start=%v end=%v): %+v",
			sawTransition, sawMask, sawFire, sawStart, sawEnd, fired.Steps)
	}
}

// TestTraceSnapshotStep: a posting inside a snapshot transaction leaves
// a "snapshot" step carrying the pinned LSN — the trace says out loud
// that persistent trigger processing was suppressed.
func TestTraceSnapshotStep(t *testing.T) {
	cls := ode.MustClass("Probe",
		ode.Factory(func() any { return new(Account) }),
		ode.ReadOnlyMethod("Peek", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			return self.(*Account).Balance, nil
		}),
		ode.Events("after Peek"),
		ode.Trigger("OnPeek", "after Peek",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error { return nil },
			ode.Perpetual()),
	)
	db, err := ode.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.Register(cls); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	ref, err := db.Create(tx, "Probe", &Account{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Activate(tx, ref, "OnPeek"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Tracer().SetRate(1)

	snap, err := db.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(snap, ref, "Peek"); err != nil {
		t.Fatal(err)
	}
	lsn := snap.SnapshotLSN()
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	found := false
	for _, rec := range db.Tracer().Snapshot() {
		for _, s := range rec.Steps {
			if s.Kind == obs.StepSnapshot {
				found = true
				if s.LSN != lsn {
					t.Errorf("snapshot step LSN = %d, want pinned %d", s.LSN, lsn)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no %q step recorded for a snapshot posting", obs.StepSnapshot)
	}
}

// TestRegistrySubsumesStats checks that the pre-existing Stats accessors
// and the registry report the same counters, and that the storage, txn,
// and lock groups are present.
func TestRegistrySubsumesStats(t *testing.T) {
	db, ref := openAccountDB(t)
	tx := db.Begin()
	if _, err := db.Invoke(tx, ref, "Deposit", 10.0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]uint64{}
	groups := map[string]bool{}
	for _, m := range db.Observability().Snapshot() {
		byName[m.Name] = m.Value
		groups[strings.SplitN(m.Name, ".", 2)[0]] = true
	}
	for _, g := range []string{"core", "storage", "txn", "lock"} {
		if !groups[g] {
			t.Errorf("registry has no %q metrics", g)
		}
	}
	st := db.Stats()
	if st.EventsPosted == 0 {
		t.Fatal("no events posted")
	}
	if byName["core.events_posted"] != st.EventsPosted {
		t.Errorf("core.events_posted = %d, Stats().EventsPosted = %d", byName["core.events_posted"], st.EventsPosted)
	}
	if byName["txn.committed"] == 0 {
		t.Error("txn.committed = 0 after a commit")
	}
	db.ResetStats()
	if got := db.Stats(); got.EventsPosted != 0 || got.FiredImmediate != 0 {
		t.Errorf("ResetStats left %+v", got)
	}
}
