// Package-level benchmarks: one testing.B entry per reproduction
// experiment (E1–E16; see DESIGN.md §4 and EXPERIMENTS.md). The paper has
// no numeric tables, so each benchmark regenerates the measurable side of
// one of its claims; cmd/ode-bench prints the full paper-shaped tables
// with baselines side by side.
package ode_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ode"
	"ode/internal/baseline/rescan"
	"ode/internal/baseline/sentinel"
	"ode/internal/event"
	"ode/internal/eventexpr"
	"ode/internal/experiments"
	"ode/internal/fsm"
	"ode/internal/obs"
	"ode/internal/repl"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
	"ode/internal/workload"
)

// --- machine-readable benchmark output (BENCH_mvcc.json) ---------------------

// benchRecords accumulates throughput numbers from the benchmarks that
// feed BENCH_mvcc.json (E16 group commit, E21 snapshot reads). When
// ODE_BENCH_OUT names a file, TestMain dumps them as JSON after the run;
// CI's bench-regression step diffs the machine-independent ratio keys
// against the committed baseline.
var (
	benchRecMu   sync.Mutex
	benchRecords = map[string]map[string]float64{}
)

func recordBench(section, key string, v float64) {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	s := benchRecords[section]
	if s == nil {
		s = map[string]float64{}
		benchRecords[section] = s
	}
	s[key] = v
}

func TestMain(m *testing.M) {
	code := m.Run()
	writeBenchOut()
	os.Exit(code)
}

func writeBenchOut() {
	path := os.Getenv("ODE_BENCH_OUT")
	if path == "" {
		return
	}
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	if len(benchRecords) == 0 {
		return
	}
	// Derive the machine-independent ratios the regression gate compares:
	// absolute q/s varies with hardware, snapshot/baseline does not.
	if e23 := benchRecords["e23_wire"]; e23 != nil {
		for _, link := range []string{"loopback", "rtt1ms"} {
			base := e23["postings_per_sec/"+link+"/json"]
			for _, mode := range []string{"binary", "mux"} {
				if v := e23[fmt.Sprintf("postings_per_sec/%s/%s", link, mode)]; base > 0 && v > 0 {
					e23[fmt.Sprintf("ratio/%s/%s", link, mode)] = v / base
				}
			}
		}
	}
	if e24 := benchRecords["e24_shard"]; e24 != nil {
		base := e24["postings_per_sec/shards=1"]
		for _, shards := range experiments.E24ShardGrid {
			if shards == 1 {
				continue
			}
			if v := e24[fmt.Sprintf("postings_per_sec/shards=%d", shards)]; base > 0 && v > 0 {
				e24[fmt.Sprintf("ratio/shards=%d", shards)] = v / base
			}
		}
	}
	if e25 := benchRecords["e25_fleetobs"]; e25 != nil {
		base := e25["postings_per_sec/untraced"]
		if v := e25["postings_per_sec/traced"]; base > 0 && v > 0 {
			e25["ratio/traced"] = v / base
		}
	}
	if e21 := benchRecords["e21_snapshot_reads"]; e21 != nil {
		for _, readers := range e21ReaderGrid {
			base := e21[fmt.Sprintf("baseline/readers=%d", readers)]
			snap := e21[fmt.Sprintf("snapshot/readers=%d", readers)]
			if base > 0 && snap > 0 {
				e21[fmt.Sprintf("ratio/readers=%d", readers)] = snap / base
			}
		}
	}
	raw, err := json.MarshalIndent(benchRecords, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench output: %v\n", err)
		return
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench output: %v\n", err)
	}
}

// benchCard is the paper's §4 CredCard (see examples/quickstart).
type benchCard struct {
	CredLim  float64
	CurrBal  float64
	GoodHist bool
}

func benchCardClass() *ode.Class {
	return ode.MustClass("CredCard",
		ode.Factory(func() any { return new(benchCard) }),
		ode.Method("Buy", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*benchCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		ode.Method("PayBill", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*benchCard)
			c.CurrBal -= args[0].(float64)
			return nil, nil
		}),
		ode.ReadOnlyMethod("Query", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			return self.(*benchCard).CurrBal, nil
		}),
		ode.Events("after Buy", "after PayBill", "after Query", "BigBuy"),
		ode.Mask("OverLimit", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			c := self.(*benchCard)
			return c.CurrBal > c.CredLim, nil
		}),
		ode.Mask("MoreCred", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			c := self.(*benchCard)
			return c.CurrBal > 0.8*c.CredLim && c.GoodHist, nil
		}),
		ode.Trigger("DenyCredit", "after Buy & OverLimit",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				ctx.TAbort()
				return nil
			},
			ode.Perpetual()),
		ode.Trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error { return nil }),
		ode.Trigger("QueryPattern", "after Query, after Query",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error { return nil },
			ode.Perpetual()),
	)
}

func benchDB(b *testing.B, activate ...string) (*ode.Database, ode.Ref) {
	b.Helper()
	db, err := ode.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.Register(benchCardClass()); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	ref, err := db.Create(tx, "CredCard", &benchCard{CredLim: 1e15, GoodHist: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range activate {
		if _, err := db.Activate(tx, ref, t); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return db, ref
}

// --- E1: Figure 1 machine compilation ----------------------------------------

// BenchmarkE1CompileFigure1 compiles the AutoRaiseLimit expression (the
// paper's Figure 1 machine) from source text to extended FSM.
func BenchmarkE1CompileFigure1(b *testing.B) {
	reg := event.NewRegistry()
	ids := map[string]event.ID{
		"BigBuy":        reg.Register("CredCard", event.User("BigBuy")),
		"after PayBill": reg.Register("CredCard", event.After("PayBill")),
		"after Buy":     reg.Register("CredCard", event.After("Buy")),
	}
	alpha := []event.ID{ids["BigBuy"], ids["after PayBill"], ids["after Buy"]}
	opts := fsm.Options{
		Resolve:  func(n *eventexpr.Name) (event.ID, error) { return ids[n.String()], nil },
		Alphabet: alpha,
	}
	parsed := eventexpr.MustParse("relative((after Buy & MoreCred()), after PayBill)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := fsm.Compile(parsed, opts)
		if err != nil || m.NumStates() != 4 {
			b.Fatalf("compile: %v (%d states)", err, m.NumStates())
		}
	}
}

// --- E2: event representation --------------------------------------------------

// BenchmarkE2EventRepInt posts events identified by globally unique
// integers (Ode's representation, §5.2).
func BenchmarkE2EventRepInt(b *testing.B) {
	const total = 512
	r := sentinel.NewIntRegistry(total + 1)
	ids := make([]event.ID, total)
	sink := 0
	for i := range ids {
		ids[i] = event.ID(i + 1)
		r.Subscribe(ids[i], func(event.ID) { sink++ })
	}
	rnd := rand.New(rand.NewSource(1))
	order := make([]int, 1<<16)
	for i := range order {
		order[i] = rnd.Intn(total)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Post(ids[order[i&(len(order)-1)]])
	}
}

// BenchmarkE2EventRepSentinelTriple posts events identified by Sentinel's
// (class, prototype, modifier) string triples (§7).
func BenchmarkE2EventRepSentinelTriple(b *testing.B) {
	const classes, per = 64, 8
	r := sentinel.NewRegistry()
	var triples []sentinel.EventTriple
	sink := 0
	for c := 0; c < classes; c++ {
		for e := 0; e < per; e++ {
			t := sentinel.EventTriple{
				Class:     fmt.Sprintf("Class%03d", c),
				Prototype: fmt.Sprintf("void member%d(Merchant*, float, const char*)", e),
				Modifier:  "end",
			}
			triples = append(triples, t)
			r.Subscribe(t, func(sentinel.EventTriple) { sink++ })
		}
	}
	rnd := rand.New(rand.NewSource(1))
	order := make([]int, 1<<16)
	for i := range order {
		order[i] = rnd.Intn(len(triples))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Post(triples[order[i&(len(order)-1)]])
	}
}

// --- E3: trigger overhead only where triggers exist ---------------------------

// BenchmarkE3InvokeNoActiveTriggers measures the fast path: the event is
// declared but no trigger is active, so posting stops at the header bit.
func BenchmarkE3InvokeNoActiveTriggers(b *testing.B) {
	db, ref := benchDB(b)
	tx := db.Begin()
	defer tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3InvokeActiveTrigger measures the slow path with one active
// trigger whose mask is evaluated on every posting.
func BenchmarkE3InvokeActiveTrigger(b *testing.B) {
	db, ref := benchDB(b, "DenyCredit")
	tx := db.Begin()
	defer tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: volatile vs persistent invocation ------------------------------------

// BenchmarkE4VolatileCall is a direct Go method call on a volatile
// object: no wrapper, no events, no trigger machinery (design goal 4).
func BenchmarkE4VolatileCall(b *testing.B) {
	c := &benchCard{CredLim: 1e15}
	buy := func(c *benchCard, amt float64) { c.CurrBal += amt }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buy(c, 1)
	}
}

// BenchmarkE4PersistentInvoke is the same operation through a persistent
// Ref, paying the wrapper path (§5.3).
func BenchmarkE4PersistentInvoke(b *testing.B) {
	db, ref := benchDB(b)
	tx := db.Begin()
	defer tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: FSM vs rescan ----------------------------------------------------------

func e5Env(b *testing.B) (map[string]event.ID, []event.ID, func(*eventexpr.Name) (event.ID, error)) {
	b.Helper()
	reg := event.NewRegistry()
	ids := map[string]event.ID{}
	var alpha []event.ID
	for i := 0; i < 4; i++ {
		n := fmt.Sprintf("E%d", i)
		id := reg.Register("Bench", event.User(n))
		ids[n] = id
		alpha = append(alpha, id)
	}
	resolve := func(n *eventexpr.Name) (event.ID, error) { return ids[n.String()], nil }
	return ids, alpha, resolve
}

// BenchmarkE5FSMDetection drives the depth-3 composite expression's FSM.
func BenchmarkE5FSMDetection(b *testing.B) {
	_, alpha, resolve := e5Env(b)
	parsed := eventexpr.MustParse(workload.Expressions(4)[2])
	m, err := fsm.Compile(parsed, fsm.Options{Resolve: resolve, Alphabet: alpha})
	if err != nil {
		b.Fatal(err)
	}
	stream := workload.EventStream(1, 4096, 4)
	evs := make([]event.ID, len(stream))
	for i, e := range stream {
		evs[i] = alpha[e]
	}
	st := m.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, _ = m.Advance(st, evs[i&4095], nil)
	}
}

// BenchmarkE5RescanDetection is the naive baseline: re-match the same
// expression against the full history on every posting.
func BenchmarkE5RescanDetection(b *testing.B) {
	_, alpha, resolve := e5Env(b)
	parsed := eventexpr.MustParse(workload.Expressions(4)[2])
	stream := workload.EventStream(1, 4096, 4)
	evs := make([]event.ID, len(stream))
	for i, e := range stream {
		evs[i] = alpha[e]
	}
	d, err := rescan.New(parsed, resolve, alpha, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%512 == 0 {
			d.Reset() // bound the quadratic blow-up to a 512-event history
		}
		if _, err := d.Post(evs[i&4095]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: sparse vs dense transitions -------------------------------------------

func e6Machine(b *testing.B) (*fsm.Machine, []event.ID, event.ID) {
	b.Helper()
	reg := event.NewRegistry()
	// Simulate a 64-class application: the measured class's 8 events sit
	// at the top of the global ID space.
	for c := 1; c < 64; c++ {
		for e := 0; e < 8; e++ {
			reg.Register(fmt.Sprintf("Other%d", c), event.User(fmt.Sprintf("E%d", e)))
		}
	}
	ids := map[string]event.ID{}
	var alpha []event.ID
	var maxID event.ID
	for e := 0; e < 8; e++ {
		n := fmt.Sprintf("E%d", e)
		id := reg.Register("Measured", event.User(n))
		ids[n] = id
		alpha = append(alpha, id)
		maxID = id
	}
	m, err := fsm.Compile(eventexpr.MustParse("E0, E1"), fsm.Options{
		Resolve:  func(n *eventexpr.Name) (event.ID, error) { return ids[n.String()], nil },
		Alphabet: alpha,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, alpha, maxID
}

// BenchmarkE6SparseTransitions advances the sparse-list machine.
func BenchmarkE6SparseTransitions(b *testing.B) {
	m, alpha, _ := e6Machine(b)
	stream := workload.EventStream(1, 4096, len(alpha))
	evs := make([]event.ID, len(stream))
	for i, e := range stream {
		evs[i] = alpha[e]
	}
	b.ReportMetric(float64(m.MemoryFootprint()), "bytes")
	st := m.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, _ = m.Advance(st, evs[i&4095], nil)
	}
}

// BenchmarkE6DenseMatrix advances the §6 direct-indexed 2-D matrix.
func BenchmarkE6DenseMatrix(b *testing.B) {
	m, alpha, maxID := e6Machine(b)
	d := fsm.NewDenseIndexed(m, maxID)
	stream := workload.EventStream(1, 4096, len(alpha))
	evs := make([]event.ID, len(stream))
	for i, e := range stream {
		evs[i] = alpha[e]
	}
	b.ReportMetric(float64(d.MemoryFootprint()), "bytes")
	st := m.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, _ = d.Advance(st, evs[i&4095], nil)
	}
}

// --- E7: index lookup against active-trigger count -----------------------------

// BenchmarkE7IndexLookup16 posts to an object with 16 active triggers —
// the §5.1.3 hash-index lookup plus 16 FSM advances.
func BenchmarkE7IndexLookup16(b *testing.B) {
	acts := make([]string, 16)
	for i := range acts {
		acts[i] = "DenyCredit"
	}
	db, ref := benchDB(b, acts...)
	tx := db.Begin()
	defer tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: read-to-write lock amplification --------------------------------------

// BenchmarkE8ReadOnlyNoTrigger runs read-only transactions with no active
// trigger: shared locks only.
func BenchmarkE8ReadOnlyNoTrigger(b *testing.B) {
	db, ref := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Query"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8ReadOnlyWithTrigger runs the same read-only transactions
// with QueryPattern active: every posting writes the trigger descriptor
// (§6's read-to-write amplification), serializing the readers.
func BenchmarkE8ReadOnlyWithTrigger(b *testing.B) {
	db, ref := benchDB(b, "QueryPattern")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Query"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: coupling modes ----------------------------------------------------------

func benchCoupling(b *testing.B, coupling ode.Coupling) {
	b.Helper()
	cls := ode.MustClass("Coupled",
		ode.Factory(func() any { return new(benchCard) }),
		ode.Method("Poke", func(ctx *ode.Ctx, self any, args []any) (any, error) { return nil, nil }),
		ode.Events("after Poke"),
		ode.Trigger("T", "after Poke",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error { return nil },
			ode.Perpetual(), ode.WithCoupling(coupling)),
	)
	db, err := ode.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.Register(cls); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Coupled", &benchCard{})
	if _, err := db.Activate(tx, ref, "T"); err != nil {
		b.Fatal(err)
	}
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Poke"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9CouplingImmediate / Deferred / Dependent / Independent time
// one firing transaction per coupling mode (§4.2).
func BenchmarkE9CouplingImmediate(b *testing.B)   { benchCoupling(b, ode.Immediate) }
func BenchmarkE9CouplingDeferred(b *testing.B)    { benchCoupling(b, ode.Deferred) }
func BenchmarkE9CouplingDependent(b *testing.B)   { benchCoupling(b, ode.Dependent) }
func BenchmarkE9CouplingIndependent(b *testing.B) { benchCoupling(b, ode.Independent) }

// --- E10: storage managers --------------------------------------------------------

func benchStorage(b *testing.B, open func(b *testing.B) *ode.Database) {
	b.Helper()
	db := open(b)
	b.Cleanup(func() { db.Close() })
	if err := db.Register(benchCardClass()); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "CredCard", &benchCard{CredLim: 1e15, GoodHist: true})
	if _, err := db.Activate(tx, ref, "DenyCredit"); err != nil {
		b.Fatal(err)
	}
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10DaliTxn commits one triggered Buy per iteration on the
// main-memory manager (MM-Ode).
func BenchmarkE10DaliTxn(b *testing.B) {
	benchStorage(b, func(b *testing.B) *ode.Database {
		db, err := ode.OpenMemory()
		if err != nil {
			b.Fatal(err)
		}
		return db
	})
}

// BenchmarkE10EosTxn commits the same transaction on the disk manager
// (WAL fsync per commit).
func BenchmarkE10EosTxn(b *testing.B) {
	benchStorage(b, func(b *testing.B) *ode.Database {
		db, err := ode.OpenDisk(filepath.Join(b.TempDir(), "bench.eos"))
		if err != nil {
			b.Fatal(err)
		}
		return db
	})
}

// --- E11: abort path ---------------------------------------------------------------

// BenchmarkE11Abort measures transaction rollback (write-set discard plus
// trigger-state rollback, §5.5).
func BenchmarkE11Abort(b *testing.B) {
	db, ref := benchDB(b, "AutoRaiseLimit")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			b.Fatal(err)
		}
		if err := tx.Abort(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: mask cascade ---------------------------------------------------------------

// BenchmarkE12MaskChain8 posts an event through a trigger whose
// expression chains eight masks; all eight evaluate per posting (§5.4.5).
func BenchmarkE12MaskChain8(b *testing.B) {
	opts := []ode.Option{
		ode.Factory(func() any { return new(benchCard) }),
		ode.Method("Poke", func(ctx *ode.Ctx, self any, args []any) (any, error) { return nil, nil }),
		ode.Events("after Poke"),
	}
	expr := "after Poke"
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("m%d", i)
		opts = append(opts, ode.Mask(name, func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			return true, nil
		}))
		expr += " & " + name
	}
	opts = append(opts, ode.Trigger("T", expr,
		func(ctx *ode.Ctx, self any, act *ode.Activation) error { return nil },
		ode.Perpetual()))
	cls := ode.MustClass("Masked", opts...)
	db, err := ode.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.Register(cls); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Masked", &benchCard{})
	if _, err := db.Activate(tx, ref, "T"); err != nil {
		b.Fatal(err)
	}
	tx.Commit()
	btx := db.Begin()
	defer btx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Invoke(btx, ref, "Poke"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: compile-every-time ----------------------------------------------------------

// BenchmarkE13RegisterClass binds the full CredCard class — catalog
// registration plus FSM compilation for both triggers (§5.1.3's
// compile-every-program-run decision).
func BenchmarkE13RegisterClass(b *testing.B) {
	cls := benchCardClass()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := ode.OpenMemory()
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Register(cls); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// --- E14: persistent vs transient detection -------------------------------------------

// BenchmarkE14PersistentPosting posts through the full engine: index
// lookup, persistent TriggerState advance, write lock — the price of
// global composite events (§7).
func BenchmarkE14PersistentPosting(b *testing.B) {
	db, ref := benchDB(b, "DenyCredit")
	tx := db.Begin()
	defer tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14TransientPosting drives the same compiled machine through a
// Sentinel-style in-memory detector: no persistence, locality only.
func BenchmarkE14TransientPosting(b *testing.B) {
	_, alpha, resolve := e5Env(b)
	m, err := fsm.Compile(eventexpr.MustParse("E0, E1"), fsm.Options{Resolve: resolve, Alphabet: alpha})
	if err != nil {
		b.Fatal(err)
	}
	d := sentinel.NewDetector(m, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Post(alpha[i&3]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E15: transaction events ------------------------------------------------------------

// BenchmarkE15TxnEventCommit measures a commit that posts
// before-tcomplete to one interested object (§5.5).
func BenchmarkE15TxnEventCommit(b *testing.B) {
	cls := ode.MustClass("Audited",
		ode.Factory(func() any { return new(benchCard) }),
		ode.Method("Touch", func(ctx *ode.Ctx, self any, args []any) (any, error) { return nil, nil }),
		ode.Events("after Touch", "before tcomplete"),
		ode.Trigger("C", "after Touch, *any, before tcomplete",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error { return nil },
			ode.Perpetual()),
	)
	db, err := ode.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.Register(cls); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	ref, _ := db.Create(tx, "Audited", &benchCard{})
	if _, err := db.Activate(tx, ref, "C"); err != nil {
		b.Fatal(err)
	}
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := db.Invoke(tx, ref, "Touch"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E16: group commit -------------------------------------------------------------------

// benchCommitters drives b.N single-op commits through m from c concurrent
// committers on disjoint OIDs (concurrency control above the storage seam
// serializes conflicting object access, so disjointness is the realistic
// multi-application load of §7).
func benchCommitters(b *testing.B, m storage.Manager, c int) {
	b.Helper()
	oids := make([]storage.OID, c)
	for i := range oids {
		oid, err := m.ReserveOID()
		if err != nil {
			b.Fatal(err)
		}
		oids[i] = oid
	}
	var txnSeq atomic.Uint64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < c; w++ {
		n := b.N / c
		if w == 0 {
			n += b.N % c
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			payload := make([]byte, 64)
			for i := 0; i < n; i++ {
				ops := []storage.Op{{Kind: storage.OpWrite, OID: oids[w], Data: payload}}
				if err := m.ApplyCommit(txnSeq.Add(1), ops); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// BenchmarkE16GroupCommit measures commit throughput against committer
// count on both managers. With group commit, eos ns/op should drop as
// committers rise (one fsync covers a whole batch); dali has no
// durability wait and is the ceiling.
func BenchmarkE16GroupCommit(b *testing.B) {
	for _, c := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("eos/committers=%d", c), func(b *testing.B) {
			m, err := eos.Open(filepath.Join(b.TempDir(), "e16.eos"), eos.Options{NoAutoCheckpoint: true})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { m.Close() })
			benchCommitters(b, m, c)
			recordBench("e16_group_commit", fmt.Sprintf("eos/committers=%d", c),
				float64(b.N)/b.Elapsed().Seconds())
		})
		b.Run(fmt.Sprintf("dali/committers=%d", c), func(b *testing.B) {
			m := dali.New()
			b.Cleanup(func() { m.Close() })
			benchCommitters(b, m, c)
			recordBench("e16_group_commit", fmt.Sprintf("dali/committers=%d", c),
				float64(b.N)/b.Elapsed().Seconds())
		})
	}
}

// --- E21: snapshot reads ----------------------------------------------------

// e21ReaderGrid is the reader-count axis BenchmarkE21SnapshotReads sweeps;
// writeBenchOut derives the snapshot/baseline ratio per point, which is the
// machine-independent number CI's bench-regression gate compares.
var e21ReaderGrid = []int{1, 8, 64}

// benchE21Readers splits b.N read-only transactions across `readers`
// goroutines. Lock-mode readers with QueryPattern active can deadlock on
// the descriptor write (that collapse is the measurement), so failed
// transactions retry until b.N queries have committed.
func benchE21Readers(b *testing.B, db *ode.Database, ref ode.Ref, readers int, snapshot bool) {
	b.Helper()
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < readers; w++ {
		n := b.N / readers
		if w == 0 {
			n += b.N % readers
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				for {
					var tx *ode.Txn
					if snapshot {
						var err error
						if tx, err = db.BeginSnapshot(); err != nil {
							b.Error(err)
							return
						}
					} else {
						tx = db.Begin()
					}
					if _, err := db.Invoke(tx, ref, "Query"); err != nil {
						tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(n)
	}
	wg.Wait()
}

// BenchmarkE21SnapshotReads measures the MVCC remedy for §6's read-to-write
// lock amplification across reader counts: baseline is lock-mode readers
// with no trigger, 2pl+trig is the E8 collapse (QueryPattern turns every
// Query into a descriptor write), snapshot is lock-free readers pinned to a
// commit LSN. Run with ODE_BENCH_OUT=BENCH_mvcc.json to regenerate the
// committed numbers.
func BenchmarkE21SnapshotReads(b *testing.B) {
	for _, mode := range []struct {
		name     string
		trigger  bool
		snapshot bool
	}{
		{"baseline", false, false},
		{"2pl+trig", true, false},
		{"snapshot", true, true},
	} {
		for _, readers := range e21ReaderGrid {
			name := fmt.Sprintf("%s/readers=%d", mode.name, readers)
			b.Run(name, func(b *testing.B) {
				var db *ode.Database
				var ref ode.Ref
				if mode.trigger {
					db, ref = benchDB(b, "QueryPattern")
				} else {
					db, ref = benchDB(b)
				}
				benchE21Readers(b, db, ref, readers, mode.snapshot)
				recordBench("e21_snapshot_reads", name, float64(b.N)/b.Elapsed().Seconds())
			})
		}
	}
}

// --- E18: observability overhead ----------------------------------------------

// BenchmarkObsOverhead measures the posting hot path (one active trigger,
// mask evaluated every posting — the E3 slow path) under three tracing
// configurations. The acceptance bar for shipping the tracer compiled
// into the path: TracingOff within 2% of the pre-observability E3 number
// — the gate is a single atomic load.
func BenchmarkObsOverhead(b *testing.B) {
	for _, cfg := range []struct {
		name string
		rate uint64
	}{
		{"TracingOff", 0},
		{"Sampled1In1024", 1024},
		{"TraceEvery", 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db, ref := benchDB(b, "DenyCredit")
			db.Tracer().SetRate(cfg.rate)
			tx := db.Begin()
			defer tx.Commit()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E20: causal provenance overhead -------------------------------------------

// BenchmarkE20Provenance measures the posting hot path with the
// provenance surface (cause-ID assignment + flight recorder) enabled —
// the shipping default — against both switched off. The acceptance bar
// for keeping provenance always on: Enabled within 2% of Disabled; the
// per-posting cost is one atomic load plus one atomic add.
// cmd/ode-bench's E20 measures the same A/B on the concurrent eos
// commit workload.
func BenchmarkE20Provenance(b *testing.B) {
	for _, cfg := range []struct {
		name string
		on   bool
	}{
		{"Enabled", true},
		{"Disabled", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db, ref := benchDB(b, "DenyCredit")
			db.SetProvenance(cfg.on)
			obs.Flight().SetEnabled(cfg.on)
			b.Cleanup(func() { obs.Flight().SetEnabled(true) })
			tx := db.Begin()
			defer tx.Commit()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E19: replication ---------------------------------------------------------

// BenchmarkE19Replication measures replicated commit cost over real TCP:
// the primary ships its WAL through repl.Hub to a streaming repl.Replica
// on 127.0.0.1. Each iteration is one committed Buy on the primary; the
// loop ends with a drain to the primary's durable log end, so ns/op
// amortizes shipping and replica apply on top of the local commit.
func BenchmarkE19Replication(b *testing.B) {
	for _, replicas := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			dir := b.TempDir()
			db, err := ode.OpenDisk(filepath.Join(dir, "p.eos"))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			if err := db.Register(benchCardClass()); err != nil {
				b.Fatal(err)
			}
			store := db.Store().(*eos.Manager)
			hub := repl.NewHub(store, repl.HubOptions{PingInterval: 10 * time.Millisecond})
			b.Cleanup(hub.Close)
			srv := server.NewWithOptions(db, server.Options{
				StreamOps: map[string]server.StreamHandler{repl.OpSubscribe: hub.HandleSubscribe},
			})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })

			reps := make([]*repl.Replica, replicas)
			for i := range reps {
				rpath := filepath.Join(dir, fmt.Sprintf("r%d.eos", i))
				rstore, err := eos.Open(rpath, eos.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { rstore.Close() })
				rep, err := repl.NewReplica(addr, rstore, repl.ReplicaOptions{
					PosPath:    rpath + ".replpos",
					RedialBase: 2 * time.Millisecond,
					RedialMax:  20 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep.Start()
				b.Cleanup(rep.Stop)
				if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
					b.Fatal(err)
				}
				reps[i] = rep
			}

			tx := db.Begin()
			ref, err := db.Create(tx, "CredCard", &benchCard{CredLim: 1e15})
			if err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin()
				if _, err := db.Invoke(tx, ref, "Buy", 1.0); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			pEnd := uint64(store.Log().End())
			for _, rep := range reps {
				for rep.Status().AppliedLSN < pEnd {
					time.Sleep(100 * time.Microsecond)
				}
			}
			b.StopTimer()
		})
	}
}

// --- E23: wire pipelining ------------------------------------------------------

// BenchmarkE23Wire measures server posting throughput per wire protocol
// at 16 concurrent clients: the JSON lockstep baseline, the ODE2 binary
// protocol with request-ID pipelining, and the multiplexed shared
// connection (docs/PROTOCOL.md). Each protocol runs twice — over raw
// loopback and through E23's emulated 1 ms-RTT network, where hiding
// latency (what pipelining is for) dominates. The rtt binary/json
// ratio is the machine-independent number CI's bench gate tracks. Run
// with ODE_BENCH_OUT=BENCH_wire.json -bench E23Wire to regenerate the
// committed numbers.
func BenchmarkE23Wire(b *testing.B) {
	const clients, perOps = 16, 2000
	for _, link := range []string{"loopback", "rtt1ms"} {
		for _, mode := range []string{"json", "binary", "mux"} {
			b.Run(link+"/"+mode, func(b *testing.B) {
				env, err := experiments.NewWireEnv(clients)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(env.Close)
				if link == "rtt1ms" {
					rttEnv, stop, err := env.WithRTT(time.Millisecond)
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(stop)
					env = rttEnv
				}
				for i := 0; i < b.N; i++ {
					rate, err := env.MeasureWirePosting(perOps, mode)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rate, "postings/s")
					recordBench("e23_wire", fmt.Sprintf("postings_per_sec/%s/%s", link, mode), rate)
				}
			})
		}
	}
}

// --- E24: horizontal sharding ---------------------------------------------------

// BenchmarkE24Shard measures routed transaction throughput through one
// ode-router as the shard fleet behind it grows 1→2→4: the E23
// transaction workload with the DenyCredit trigger active, 16
// pipelining binary clients, and each shard's store carrying E24's
// emulated per-node service time (a node is the paper's single-process
// Ode, §6; see internal/experiments/e24.go). The shards=N / shards=1
// ratios are the machine-independent numbers BENCH_shard.json commits
// and CI's bench gate tracks. Run with ODE_BENCH_OUT=BENCH_shard.json
// -bench E24Shard -benchtime 1x to regenerate the committed numbers.
func BenchmarkE24Shard(b *testing.B) {
	const clients, opsPerTxn, perTxns = 16, 4, 100
	for _, shards := range experiments.E24ShardGrid {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			env, err := experiments.NewShardEnv(shards, clients)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(env.Close)
			for i := 0; i < b.N; i++ {
				rate, err := env.MeasureShardTxns(perTxns, opsPerTxn)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rate, "postings/s")
				recordBench("e24_shard", fmt.Sprintf("postings_per_sec/shards=%d", shards), rate)
			}
		})
	}
}

// --- E25: fleet observability overhead ----------------------------------------

// BenchmarkE25FleetObs measures the routed E24 workload (2 shards, 16
// pipelining binary clients, DenyCredit active) with fleet tracing off
// versus 1-in-16 across every shard — the rate set by one trace.rate
// broadcast through the router. The traced/untraced ratio is the
// machine-independent number BENCH_fleetobs.json commits and CI's
// bench gate tracks (target ≥0.98: fleet tracing costs ≤2%). Run with
// ODE_BENCH_OUT=BENCH_fleetobs.json -bench E25FleetObs -benchtime 1x to
// regenerate the committed numbers.
func BenchmarkE25FleetObs(b *testing.B) {
	const shards, clients, opsPerTxn, perTxns = 2, 16, 4, 100
	for i := 0; i < b.N; i++ {
		untraced, traced, err := experiments.MeasureFleetObs(shards, clients, perTxns, opsPerTxn)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(traced/untraced, "traced/untraced")
		recordBench("e25_fleetobs", "postings_per_sec/untraced", untraced)
		recordBench("e25_fleetobs", "postings_per_sec/traced", traced)
	}
}

// --- E22: anti-entropy rejoin bytes -------------------------------------------

// BenchmarkE22AntiEntropy measures the downstream bytes an
// out-of-retained-log replica needs to rejoin via coded-symbol
// reconciliation, against the snapshot bootstrap it replaces. The
// snapshot/rejoin byte ratio is machine-independent, so it is what
// BENCH_antientropy.json commits and CI's bench gate tracks. Run with
// ODE_BENCH_OUT=BENCH_antientropy.json -bench E22AntiEntropy to
// regenerate the committed numbers.
func BenchmarkE22AntiEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.MeasureAntiEntropy(filepath.Join(b.TempDir(), "e22"),
			1000, []float64{0.01, 0.1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.SnapshotBytes), "snap-bytes")
		recordBench("e22_antientropy", "snapshot_bytes", float64(m.SnapshotBytes))
		for _, p := range m.Points {
			recordBench("e22_antientropy", fmt.Sprintf("rejoin_bytes/drift=%g", p.Fraction), float64(p.RejoinBytes))
			recordBench("e22_antientropy", fmt.Sprintf("ratio/drift=%g", p.Fraction),
				float64(m.SnapshotBytes)/float64(p.RejoinBytes))
		}
	}
}
