package ode_test

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"ode/internal/core"
	"ode/internal/repl"
	"ode/internal/server"
	"ode/internal/storage/dali"
)

// TestProtocolDocCoverage enforces the contract stated in
// docs/PROTOCOL.md: every op the session dispatcher handles, every
// replication op ode-server registers, every JSON field of the request
// and response envelopes, and every wire-level metric must appear
// verbatim in the protocol / observability docs. Adding an op or a
// field without documenting it fails CI (the `wire` job runs this test
// by name).
func TestProtocolDocCoverage(t *testing.T) {
	raw, err := os.ReadFile("docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("docs/PROTOCOL.md missing: %v", err)
	}
	doc := string(raw)

	// Every op in the real dispatch table, plus the replication ops
	// ode-server wires in via ExtraOps/StreamOps.
	ops := server.BuiltinOps()
	ops = append(ops, repl.OpSubscribe, repl.OpRecon, repl.OpStatus,
		repl.OpPromote, repl.OpVerify)
	for _, op := range ops {
		if !strings.Contains(doc, "`"+op+"`") {
			t.Errorf("op %q is not documented in docs/PROTOCOL.md", op)
		}
	}

	// Every JSON field of the request and response envelopes and of the
	// proto op's status payload.
	for _, typ := range []reflect.Type{
		reflect.TypeOf(server.Request{}),
		reflect.TypeOf(server.Response{}),
		reflect.TypeOf(server.ProtoStatus{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			name := strings.Split(tag, ",")[0]
			if name == "" || name == "-" {
				continue
			}
			if !strings.Contains(doc, "`"+name+"`") {
				t.Errorf("%s JSON field `%s` is not documented in docs/PROTOCOL.md", typ.Name(), name)
			}
		}
	}

	// The wire metrics the server registers must be documented next to
	// the engine's own, in docs/OBSERVABILITY.md.
	obsRaw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("docs/OBSERVABILITY.md missing: %v", err)
	}
	obsDoc := string(obsRaw)
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	server.New(db) // registers the server.* metrics on db's registry
	sawServerMetric := false
	for _, name := range db.Observability().Names() {
		if !strings.HasPrefix(name, "server.") {
			continue
		}
		sawServerMetric = true
		if !strings.Contains(obsDoc, "`"+name+"`") {
			t.Errorf("wire metric %q is not documented in docs/OBSERVABILITY.md", name)
		}
	}
	if !sawServerMetric {
		t.Fatal("constructing a server registered no server.* metrics; coverage check is vacuous")
	}
}
