// Command credcard is a persistent credit-card CLI against a disk
// database. Because each invocation is a separate process, it
// demonstrates Ode's *global* composite events (§7): TriggerStates live
// in the database, so a pattern armed by one process run fires in a later
// one — the capability the paper contrasts with Sentinel's
// transient-memory (local-only) detection.
//
// Usage:
//
//	credcard -db card.eos init -limit 1000
//	credcard -db card.eos watch -raise 500     # activate AutoRaiseLimit
//	credcard -db card.eos buy -amount 900      # process 1 arms the pattern
//	credcard -db card.eos pay -amount 100      # process 2 fires it
//	credcard -db card.eos report
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"ode"
)

// CredCard is the paper's §4 class (see examples/quickstart).
type CredCard struct {
	Holder     string
	CredLim    float64
	CurrBal    float64
	GoodHist   bool
	BlackMarks []string
}

func credCardClass() *ode.Class {
	return ode.MustClass("CredCard",
		ode.Factory(func() any { return new(CredCard) }),
		ode.Method("Buy", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return nil, nil
		}),
		ode.Method("PayBill", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal -= args[0].(float64)
			return nil, nil
		}),
		ode.Method("RaiseLimit", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CredLim += args[0].(float64)
			return nil, nil
		}),
		ode.Method("BlackMark", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.BlackMarks = append(c.BlackMarks, args[0].(string))
			return nil, nil
		}),
		ode.Events("after Buy", "after PayBill", "BigBuy"),
		ode.Mask("OverLimit", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > c.CredLim, nil
		}),
		ode.Mask("MoreCred", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > 0.8*c.CredLim && c.GoodHist, nil
		}),
		ode.Trigger("DenyCredit", "after Buy & OverLimit",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				if _, err := ctx.Invoke(ctx.Self(), "BlackMark", "Over Limit"); err != nil {
					return err
				}
				ctx.TAbort()
				return nil
			},
			ode.Perpetual()),
		ode.Trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "RaiseLimit", act.ArgFloat(0))
				return err
			}),
	)
}

// cardRef finds the single card through the "cards" cluster.
func cardRef(db *ode.Database, tx *ode.Txn) (ode.Ref, error) {
	var found ode.Ref
	err := db.ClusterScan(tx, "cards", func(r ode.Ref) error {
		found = r
		return nil
	})
	if err != nil {
		return found, err
	}
	if found.IsNil() {
		return found, errors.New("no card in this database; run init first")
	}
	return found, nil
}

func main() {
	log.SetFlags(0)
	dbPath := flag.String("db", "card.eos", "database file")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: credcard -db FILE {init|watch|buy|pay|bigbuy|report} [flags]")
	}
	cmd := flag.Arg(0)
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	limit := sub.Float64("limit", 1000, "credit limit (init)")
	holder := sub.String("holder", "Narain", "card holder (init)")
	amount := sub.Float64("amount", 100, "amount (buy/pay)")
	raise := sub.Float64("raise", 500, "raise amount (watch)")
	sub.Parse(flag.Args()[1:])

	db, err := ode.OpenDisk(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Register(credCardClass()); err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "init":
		tx := db.Begin()
		ref, err := db.Create(tx, "CredCard", &CredCard{
			Holder: *holder, CredLim: *limit, GoodHist: true,
		})
		must(err)
		must(db.ClusterAdd(tx, "cards", ref))
		_, err = db.Activate(tx, ref, "DenyCredit")
		must(err)
		must(tx.Commit())
		fmt.Printf("card created for %s with limit $%.0f (DenyCredit active)\n", *holder, *limit)

	case "watch":
		tx := db.Begin()
		ref, err := cardRef(db, tx)
		must(err)
		id, err := db.Activate(tx, ref, "AutoRaiseLimit", *raise)
		must(err)
		must(tx.Commit())
		fmt.Printf("AutoRaiseLimit($%.0f) activated: %v\n", *raise, id)

	case "buy", "pay", "bigbuy":
		tx := db.Begin()
		ref, err := cardRef(db, tx)
		must(err)
		switch cmd {
		case "buy":
			_, err = db.Invoke(tx, ref, "Buy", *amount)
		case "pay":
			_, err = db.Invoke(tx, ref, "PayBill", *amount)
		case "bigbuy":
			err = db.PostUserEvent(tx, ref, "BigBuy")
		}
		must(err)
		if err := tx.Commit(); errors.Is(err, ode.ErrAborted) {
			fmt.Println("DECLINED: transaction aborted by DenyCredit")
			os.Exit(2)
		} else {
			must(err)
		}
		fmt.Printf("%s ok\n", cmd)

	case "report":
		tx := db.Begin()
		defer tx.Abort()
		ref, err := cardRef(db, tx)
		must(err)
		c, err := ode.Get[*CredCard](db, tx, ref)
		must(err)
		fmt.Printf("holder:  %s\nbalance: $%.2f\nlimit:   $%.2f\nmarks:   %v\n",
			c.Holder, c.CurrBal, c.CredLim, c.BlackMarks)
		active, err := db.ActiveTriggers(tx, ref)
		must(err)
		fmt.Println("active triggers:")
		for _, a := range active {
			fmt.Printf("  %-15s state=%d args=%v (%v)\n", a.Trigger, a.StateNum, a.Args, a.ID)
		}

	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
