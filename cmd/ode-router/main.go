// Command ode-router fronts a fleet of shard-mode ode-servers: it
// speaks both client protocols (newline JSON and ODE2 binary) on one
// listen port and forwards every op to the shard that owns it on the
// consistent-hash ring (docs/SHARDING.md).
//
// The shard list and its order are the ring: every router and every
// shard must be started with the identical list, or they will disagree
// about ownership. shard.status reports the topology a router is using
// plus every shard's own status (outbox depth, ingest watermarks):
//
//	{"op":"shard.status"}
//	{"ok":true,"value":{"shards":2,"vnodes":128,"self":-1,"node":"router",
//	                    "addrs":[...],"fleet":[{"self":0,...},{"self":1,...}]}}
//
// The router is also the fleet's observability plane: metrics, trace,
// flight, trace.rate, and trace.chain fan out to every shard and answer
// with merged node-tagged views, and -obs-addr serves the router's own
// HTTP surface with /readyz gated on shard reachability
// (docs/OBSERVABILITY.md §"Fleet observability").
//
// Usage:
//
//	ode-server -mem -addr 127.0.0.1:7101 -shard-peers 127.0.0.1:7101,127.0.0.1:7102 -shard-index 0 &
//	ode-server -mem -addr 127.0.0.1:7102 -shard-peers 127.0.0.1:7101,127.0.0.1:7102 -shard-index 1 &
//	ode-router -addr 127.0.0.1:7047 -shards 127.0.0.1:7101,127.0.0.1:7102
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"ode/internal/obs"
	"ode/internal/server"
	"ode/internal/shard"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7047", "listen address")
	shards := flag.String("shards", "", "comma-separated shard addresses in ring order (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default; must match the shards)")
	streamShard := flag.Int("stream-shard", 0, "shard that receives spliced stream ops and repl.* admin ops")
	maxReq := flag.Int("max-request", server.DefaultMaxRequestBytes, "per-request size cap in bytes")
	dialAttempts := flag.Int("dial-attempts", 10, "backend dial attempts before giving up")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address (router metrics, /healthz, /readyz gated on shard reachability; empty = disabled)")
	flag.Parse()

	if *shards == "" {
		log.Fatal("-shards is required")
	}
	addrs := strings.Split(*shards, ",")
	ring, err := shard.NewRing(len(addrs), *vnodes)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := shard.NewRouter(ring, shard.RouterOptions{
		Addrs:           addrs,
		MaxRequestBytes: *maxReq,
		StreamShard:     *streamShard,
		Client: server.ClientOptions{
			DialAttempts: *dialAttempts,
			RedialBase:   50 * time.Millisecond,
			RedialMax:    2 * time.Second,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if *obsAddr != "" {
		// Readiness is gated on shard reachability: a router whose fleet
		// is unreachable accepts connections but cannot route, so load
		// balancers should not send it traffic.
		health := obs.NewHealth()
		health.SetReadiness("shards", func() error {
			for i, a := range addrs {
				c, err := net.DialTimeout("tcp", a, 2*time.Second)
				if err != nil {
					return fmt.Errorf("shard %d (%s): %v", i, a, err)
				}
				c.Close()
			}
			return nil
		})
		bound, err := obs.Serve(*obsAddr, rt.Observability(), nil, health)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("observability on http://%s (metrics, healthz, readyz, pprof)", bound)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ode-router listening on %s (%d shards, %d vnodes)", ln.Addr(), ring.Shards(), ring.Vnodes())
	go func() {
		if err := rt.Serve(ln); err != nil {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("shutting down")
	rt.Close()
}
