// Command ode-inspect dumps the physical and trigger-level contents of an
// Ode database file without needing the application's class definitions:
// the catalog, every object envelope (class, flags, payload preview),
// every persistent TriggerState (§5.4.1), and the object→trigger index.
//
// Usage:
//
//	ode-inspect [-v] file.eos
package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"ode/internal/lock"
	"ode/internal/obj"
	"ode/internal/storage"
	"ode/internal/storage/eos"
	"ode/internal/txn"
)

func main() {
	log.SetFlags(0)
	verbose := flag.Bool("v", false, "print full payloads")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: ode-inspect [-v] file.eos")
	}
	store, err := eos.Open(flag.Arg(0), eos.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	tm := txn.NewManager(store, lock.NewManager())
	om, err := obj.New(tm)
	if err != nil {
		log.Fatal(err)
	}
	tx := tm.Begin()
	defer tx.Abort()

	classNames, err := om.ClassNames(tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d classes\n", len(classNames))
	ids := make([]int, 0, len(classNames))
	for id := range classNames {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  class %d: %s\n", id, classNames[uint32(id)])
	}

	// Walk every stored object, classifying by shape.
	type objRow struct {
		oid   storage.OID
		class string
		flags string
		size  int
		body  string
	}
	var objects, trigs []objRow
	err = store.Iterate(func(oid storage.OID, data []byte) error {
		if oid < obj.FirstUserOID {
			return nil // catalog and index buckets
		}
		// TriggerStates are bare JSON; objects have envelopes.
		if h, payload, err := obj.DecodeEnvelope(data); err == nil {
			if name, ok := classNames[h.ClassID]; ok {
				var flags []string
				if h.Flags&obj.FlagHasTriggers != 0 {
					flags = append(flags, "triggers")
				}
				if h.Flags&obj.FlagTxnEvents != 0 {
					flags = append(flags, "txn-events")
				}
				objects = append(objects, objRow{
					oid: oid, class: name, flags: strings.Join(flags, ","),
					size: len(payload), body: preview(payload, *verbose),
				})
				return nil
			}
		}
		var ts struct {
			TriggerName string `json:"trigger_name"`
			ObjOID      uint64 `json:"obj_oid"`
			StateNum    int32  `json:"state_num"`
			OwnerClass  uint32 `json:"owner_class"`
			Args        []any  `json:"args"`
		}
		if json.Unmarshal(data, &ts) == nil && ts.TriggerName != "" {
			trigs = append(trigs, objRow{
				oid:   oid,
				class: classNames[ts.OwnerClass],
				body: fmt.Sprintf("%s on obj %d, state %d, args %v",
					ts.TriggerName, ts.ObjOID, ts.StateNum, ts.Args),
			})
			return nil
		}
		var cl struct {
			Name    string
			Members []uint64
		}
		if gob.NewDecoder(bytes.NewReader(data)).Decode(&cl) == nil && cl.Name != "" {
			objects = append(objects, objRow{
				oid: oid, class: "(cluster)", size: len(data),
				body: fmt.Sprintf("%q: %d members %v", cl.Name, len(cl.Members), cl.Members),
			})
			return nil
		}
		objects = append(objects, objRow{oid: oid, class: "?", size: len(data), body: preview(data, *verbose)})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	sortRows := func(rows []objRow) {
		sort.Slice(rows, func(i, j int) bool { return rows[i].oid < rows[j].oid })
	}
	sortRows(objects)
	sortRows(trigs)

	fmt.Printf("\nobjects: %d\n", len(objects))
	for _, o := range objects {
		fmt.Printf("  oid %-5d %-12s %-18s %5dB  %s\n", o.oid, o.class, "["+o.flags+"]", o.size, o.body)
	}
	fmt.Printf("\ntrigger states: %d\n", len(trigs))
	for _, o := range trigs {
		fmt.Printf("  oid %-5d (class %s) %s\n", o.oid, o.class, o.body)
	}

	st := store.Stats()
	fmt.Printf("\nstore stats: %d reads, %d page reads, %d cache hits\n",
		st.Reads, st.PageReads, st.CacheHits)
	avg := 0.0
	if st.Fsyncs > 0 {
		avg = float64(st.GroupCommits) / float64(st.Fsyncs)
	}
	fmt.Printf("group commit: %d commits over %d fsyncs (batch min/avg/max %d/%.1f/%d), %.2fms total commit wait\n",
		st.GroupCommits, st.Fsyncs, st.BatchMin, avg, st.BatchMax,
		float64(st.CommitWaitNs)/1e6)
	fmt.Printf("fault recovery: %d WAL heals (sync failures survived by truncating back to the durable prefix)\n",
		st.WALHeals)
}

func preview(data []byte, full bool) string {
	s := string(data)
	if !full && len(s) > 60 {
		s = s[:57] + "..."
	}
	return strings.Map(func(r rune) rune {
		if r < 32 {
			return '.'
		}
		return r
	}, s)
}
