// Command ode-inspect dumps the physical and trigger-level contents of an
// Ode database file without needing the application's class definitions:
// the catalog, every object envelope (class, flags, payload preview),
// every persistent TriggerState (§5.4.1), and the object→trigger index.
//
// It also prints every registered storage/txn/lock counter, derived
// generically from the obs.Registry, so a counter added to any Stats
// struct shows up here without a hand-written print line.
//
// With -traces it instead connects to a running ode-server and exports
// the firing-trace ring as JSON (the server's "trace" op):
//
//	ode-inspect -traces 127.0.0.1:7047 [-rate 16]
//
// With -repl it connects to a running replica ode-server and prints its
// replication status — applied LSN, lag bytes, reconnects (the server's
// "repl.status" op):
//
//	ode-inspect -repl 127.0.0.1:7048
//
// With -flight it fetches the server's always-on flight recorder: the
// ring of recent structured incidents (commits, WAL heals, detached
// retries/drops, action panics, replica redials, promotions), each with
// its causal-provenance IDs (the server's "flight" op):
//
//	ode-inspect -flight 127.0.0.1:7047
//
// With -chain it reconstructs the cause chain rooted at a cause ID: it
// fetches flat chain events (the "trace.chain" op, raw form) from every
// listed address — a router answers for its whole fleet; add replica
// addresses to fold in their traces too — and prints the assembled
// parent-linked tree as JSON:
//
//	ode-inspect -chain 00000000000000a0-17 127.0.0.1:7047 [addr...]
//
// With -verify it runs an anti-entropy divergence audit on a running
// replica ode-server (the server's "repl.verify" op) and prints the
// VerifyReport; add -repair to authorize rewriting confirmed-divergent
// objects in place from the primary's images:
//
//	ode-inspect -verify 127.0.0.1:7048 [-repair]
//
// With -wire it asks a running ode-server which protocol the connection
// negotiated and prints the server's wire counters — frames, bytes,
// connections per protocol (the server's "proto" op). It tries the ODE2
// binary upgrade first and falls back to JSON if the server is running
// -protocol json:
//
//	ode-inspect -wire 127.0.0.1:7047
//
// Usage:
//
//	ode-inspect [-v] file.eos
//	ode-inspect -traces addr [-rate n]
//	ode-inspect -repl addr
//	ode-inspect -flight addr
//	ode-inspect -chain cause-id addr [addr...]
//	ode-inspect -verify addr [-repair]
//	ode-inspect -wire addr
package main

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strings"

	"ode/internal/core"
	"ode/internal/lock"
	"ode/internal/obj"
	"ode/internal/obs"
	"ode/internal/repl"
	"ode/internal/server"
	"ode/internal/storage"
	"ode/internal/storage/eos"
	"ode/internal/txn"
)

func main() {
	log.SetFlags(0)
	verbose := flag.Bool("v", false, "print full payloads")
	traces := flag.String("traces", "", "fetch firing traces as JSON from a running ode-server at this address")
	rate := flag.Int64("rate", 0, "with -traces: >0 sets 1-in-n trace sampling on the server, <0 disables it")
	replAddr := flag.String("repl", "", "fetch replication status as JSON from a running replica ode-server at this address")
	flightAddr := flag.String("flight", "", "fetch the flight-recorder incident ring as JSON from a running ode-server at this address")
	verifyAddr := flag.String("verify", "", "run an anti-entropy divergence audit on a running replica ode-server at this address (the server's \"repl.verify\" op)")
	repair := flag.Bool("repair", false, "with -verify: authorize in-place repair of confirmed divergence")
	verifyClass := flag.String("class", "", "with -verify: scope the audit to one class by name")
	wireAddr := flag.String("wire", "", "print the negotiated protocol and wire counters of a running ode-server at this address (the server's \"proto\" op)")
	chainCause := flag.String("chain", "", "assemble the cause chain rooted at this cause ID from the addresses given as arguments (the servers' \"trace.chain\" op)")
	flag.Parse()
	if *chainCause != "" {
		if flag.NArg() < 1 {
			log.Fatal("usage: ode-inspect -chain cause-id addr [addr...]")
		}
		if err := fetchChain(*chainCause, flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *traces != "" {
		req := map[string]any{"op": "trace"}
		if *rate != 0 {
			req["rate"] = *rate
		}
		if err := fetchJSON(*traces, req); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *replAddr != "" {
		if err := fetchJSON(*replAddr, map[string]any{"op": repl.OpStatus}); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *flightAddr != "" {
		if err := fetchJSON(*flightAddr, map[string]any{"op": "flight"}); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *wireAddr != "" {
		if err := fetchWire(*wireAddr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *verifyAddr != "" {
		// Unlike the other fetch modes, a failed audit still carries a
		// report (which OIDs diverged), so print it before failing.
		if err := fetchVerify(*verifyAddr, *repair, *verifyClass); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: ode-inspect [-v] file.eos  |  ode-inspect -traces addr [-rate n]  |  ode-inspect -repl addr  |  ode-inspect -flight addr  |  ode-inspect -verify addr [-repair]  |  ode-inspect -wire addr")
	}
	store, err := eos.Open(flag.Arg(0), eos.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	lm := lock.NewManager()
	tm := txn.NewManager(store, lm)
	om, err := obj.New(tm)
	if err != nil {
		log.Fatal(err)
	}
	tx := tm.Begin()
	defer tx.Abort()

	classNames, err := om.ClassNames(tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d classes\n", len(classNames))
	ids := make([]int, 0, len(classNames))
	for id := range classNames {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  class %d: %s\n", id, classNames[uint32(id)])
	}

	// Walk every stored object, classifying by shape.
	type objRow struct {
		oid   storage.OID
		class string
		flags string
		size  int
		body  string
	}
	var objects, trigs []objRow
	err = store.Iterate(func(oid storage.OID, data []byte) error {
		if oid < obj.FirstUserOID {
			return nil // catalog and index buckets
		}
		// TriggerStates are bare JSON; objects have envelopes.
		if h, payload, err := obj.DecodeEnvelope(data); err == nil {
			if name, ok := classNames[h.ClassID]; ok {
				var flags []string
				if h.Flags&obj.FlagHasTriggers != 0 {
					flags = append(flags, "triggers")
				}
				if h.Flags&obj.FlagTxnEvents != 0 {
					flags = append(flags, "txn-events")
				}
				objects = append(objects, objRow{
					oid: oid, class: name, flags: strings.Join(flags, ","),
					size: len(payload), body: preview(payload, *verbose),
				})
				return nil
			}
		}
		var ts struct {
			TriggerName string `json:"trigger_name"`
			ObjOID      uint64 `json:"obj_oid"`
			StateNum    int32  `json:"state_num"`
			OwnerClass  uint32 `json:"owner_class"`
			Args        []any  `json:"args"`
		}
		if json.Unmarshal(data, &ts) == nil && ts.TriggerName != "" {
			trigs = append(trigs, objRow{
				oid:   oid,
				class: classNames[ts.OwnerClass],
				body: fmt.Sprintf("%s on obj %d, state %d, args %v",
					ts.TriggerName, ts.ObjOID, ts.StateNum, ts.Args),
			})
			return nil
		}
		var cl struct {
			Name    string
			Members []uint64
		}
		if gob.NewDecoder(bytes.NewReader(data)).Decode(&cl) == nil && cl.Name != "" {
			objects = append(objects, objRow{
				oid: oid, class: "(cluster)", size: len(data),
				body: fmt.Sprintf("%q: %d members %v", cl.Name, len(cl.Members), cl.Members),
			})
			return nil
		}
		objects = append(objects, objRow{oid: oid, class: "?", size: len(data), body: preview(data, *verbose)})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	sortRows := func(rows []objRow) {
		sort.Slice(rows, func(i, j int) bool { return rows[i].oid < rows[j].oid })
	}
	sortRows(objects)
	sortRows(trigs)

	fmt.Printf("\nobjects: %d\n", len(objects))
	for _, o := range objects {
		fmt.Printf("  oid %-5d %-12s %-18s %5dB  %s\n", o.oid, o.class, "["+o.flags+"]", o.size, o.body)
	}
	fmt.Printf("\ntrigger states: %d\n", len(trigs))
	for _, o := range trigs {
		fmt.Printf("  oid %-5d (class %s) %s\n", o.oid, o.class, o.body)
	}

	// Version-store summary (MVCC snapshot reads): the full counters are
	// in the generic stats below as obj.versions_*; this line pulls out
	// what an operator actually checks — chain pressure, GC progress, and
	// whether a forgotten pin is holding versions alive.
	vs := store.VersionStats()
	fmt.Printf("\nversion store: snapshot lsn %d, %d chains (%d versions live, longest %d), %d trimmed over %d gc runs, %d pins (oldest pinned lsn %d)\n",
		store.SnapshotLSN(), vs.VersionsChains, vs.VersionsLive, vs.VersionsChainMax,
		vs.VersionsTrimmed, vs.VersionsGcRuns, vs.VersionsPins, vs.VersionsOldestPinLsn)

	// Every subsystem counter, listed generically from the registry: a
	// counter added to storage/txn/lock Stats appears here (and in the
	// server's /metrics) without a hand-written print line.
	reg := obs.NewRegistry()
	core.RegisterSubsystems(reg, store, tm, lm)
	fmt.Printf("\nstats:\n")
	for _, m := range reg.Snapshot() {
		switch m.Kind {
		case obs.KindHistogram:
			fmt.Printf("  %-28s count=%d sum=%d p50=%d p99=%d %s\n", m.Name, m.Count, m.Sum, m.P50, m.P99, m.Unit)
		default:
			fmt.Printf("  %-28s %12d %s\n", m.Name, m.Value, m.Unit)
		}
	}
}

// fetchChain collects flat chain events from every address (a router
// answers for its whole fleet; replicas can be listed alongside),
// assembles the tree for the root cause locally, and prints it as
// indented JSON. Assembling client-side instead of trusting one
// server's tree is what lets the chain span processes no single router
// fronts.
func fetchChain(cause string, addrs []string) error {
	if _, ok := obs.ParseCause(cause); !ok {
		return fmt.Errorf(`invalid cause ID %q (want the "%%016x-%%d" form, e.g. 00000000000000a0-17)`, cause)
	}
	var evs []obs.ChainEvent
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		err = func() error {
			defer conn.Close()
			if err := json.NewEncoder(conn).Encode(map[string]any{"op": "trace.chain", "raw": true}); err != nil {
				return err
			}
			line, err := bufio.NewReader(conn).ReadBytes('\n')
			if err != nil {
				return err
			}
			var resp struct {
				OK     bool               `json:"ok"`
				Error  string             `json:"error"`
				Result server.ChainEvents `json:"result"`
			}
			if err := json.Unmarshal(line, &resp); err != nil {
				return err
			}
			if !resp.OK {
				return fmt.Errorf("server %s: %s", addr, resp.Error)
			}
			evs = append(evs, resp.Result.Events...)
			return nil
		}()
		if err != nil {
			return err
		}
	}
	pretty, err := json.MarshalIndent(obs.AssembleChain(cause, evs), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(pretty))
	return nil
}

// fetchVerify runs the repl.verify op and prints the VerifyReport even
// when the audit failed (diverged, lagged, repair exhausted): the report
// is the diagnosis, the error is the verdict.
func fetchVerify(addr string, repair bool, class string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := map[string]any{"op": repl.OpVerify}
	if repair {
		req["repair"] = true
	}
	if class != "" {
		req["class"] = class
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return err
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return err
	}
	var resp struct {
		OK     bool            `json:"ok"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		return err
	}
	if len(resp.Result) > 0 {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, resp.Result, "", "  "); err != nil {
			return err
		}
		pretty.WriteByte('\n')
		if _, err := pretty.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	if !resp.OK {
		return fmt.Errorf("server: %s", resp.Error)
	}
	return nil
}

// fetchWire asks the server's proto op what this very connection
// negotiated, preferring the binary upgrade and falling back to the
// JSON protocol against a -protocol json server.
func fetchWire(addr string) error {
	c, err := server.DialOptions(addr, server.ClientOptions{Binary: true})
	if err != nil && errors.Is(err, server.ErrBinaryDisabled) {
		c, err = server.Dial(addr)
	}
	if err != nil {
		return err
	}
	defer c.Close()
	resp, err := c.Call(&server.Request{Op: "proto"})
	if err != nil {
		return err
	}
	pretty, err := json.MarshalIndent(resp.Result, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(pretty))
	return nil
}

// fetchJSON sends one request to a running ode-server and prints the
// response's result as indented JSON (the -traces/-repl/-flight modes).
func fetchJSON(addr string, req map[string]any) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return err
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return err
	}
	var resp struct {
		OK     bool            `json:"ok"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("server: %s", resp.Error)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, resp.Result, "", "  "); err != nil {
		return err
	}
	pretty.WriteByte('\n')
	_, err = pretty.WriteTo(os.Stdout)
	return err
}

func preview(data []byte, full bool) string {
	s := string(data)
	if !full && len(s) > 60 {
		s = s[:57] + "..."
	}
	return strings.Map(func(r rune) rune {
		if r < 32 {
			return '.'
		}
		return r
	}, s)
}
