// Command ode-benchdiff compares a freshly generated benchmark JSON file
// (see bench_test.go's ODE_BENCH_OUT hook) against the committed baseline
// BENCH_mvcc.json and fails if a machine-independent ratio regressed.
//
// Absolute throughput numbers vary with hardware, so only the derived
// "ratio/..." keys are gated: they divide two measurements taken on the
// same machine in the same run (e.g. snapshot reader q/s over the
// no-trigger baseline), which cancels the hardware term. A fresh ratio
// below threshold × committed means snapshot reads got relatively slower.
//
// Usage:
//
//	ode-benchdiff [-threshold 0.9] committed.json fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	threshold := flag.Float64("threshold", 0.9, "fail when fresh ratio < threshold * committed ratio")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatalf("usage: ode-benchdiff [-threshold 0.9] committed.json fresh.json")
	}
	committed := load(flag.Arg(0))
	fresh := load(flag.Arg(1))

	failed := false
	checked := 0
	for _, section := range sortedKeys(committed) {
		for _, key := range sortedKeys(committed[section]) {
			if !strings.HasPrefix(key, "ratio/") {
				continue
			}
			want := committed[section][key]
			got, ok := fresh[section][key]
			if !ok {
				fmt.Printf("MISSING %s %s (committed %.2f, fresh run has no value)\n", section, key, want)
				failed = true
				continue
			}
			checked++
			verdict := "ok"
			if got < *threshold*want {
				verdict = "REGRESSED"
				failed = true
			}
			fmt.Printf("%-9s %s %s: committed %.2f, fresh %.2f\n", verdict, section, key, want, got)
		}
	}
	if checked == 0 && !failed {
		log.Fatalf("no ratio keys found in %s — nothing gated", flag.Arg(0))
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) map[string]map[string]float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("read %s: %v", path, err)
	}
	var out map[string]map[string]float64
	if err := json.Unmarshal(raw, &out); err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
