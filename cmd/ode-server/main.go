// Command ode-server serves an Ode database to concurrent network
// clients — the multi-application deployment in which the paper's
// *global* composite events (§7) matter: transactions from different
// applications jointly advance persistent trigger patterns.
//
// Class definitions are Go code, so — like an O++ application linking the
// object manager (§2) — the server binary carries the schema. This demo
// server exposes the paper's §4 CredCard class; embed your own classes by
// building a variant around internal/server.New.
//
// Usage:
//
//	ode-server -db cards.eos -addr 127.0.0.1:7047
//
// The server speaks two protocols on one port (docs/PROTOCOL.md): the
// newline-delimited JSON below, and — for clients whose first four
// bytes are "ODE2" — a length-prefixed binary framing with request IDs,
// pipelining, and multiplexed sessions. -protocol json disables the
// binary upgrade.
//
// JSON protocol (one transaction per connection):
//
//	{"op":"begin"}
//	{"op":"create","class":"CredCard","value":{"CredLim":1000,"GoodHist":true}}
//	{"op":"activate","ref":18,"trigger":"AutoRaiseLimit","args":[500]}
//	{"op":"invoke","ref":18,"method":"Buy","args":[900]}
//	{"op":"commit"}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"ode"
	"ode/internal/core"
	"ode/internal/obs"
	"ode/internal/repl"
	"ode/internal/server"
	"ode/internal/shard"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
)

// CredCard is the served schema (the paper's §4 class).
type CredCard struct {
	Holder     string
	CredLim    float64
	CurrBal    float64
	GoodHist   bool
	BlackMarks []string
}

func credCardClass() *ode.Class {
	return ode.MustClass("CredCard",
		ode.Factory(func() any { return new(CredCard) }),
		ode.Method("Buy", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal += args[0].(float64)
			return c.CurrBal, nil
		}),
		ode.Method("PayBill", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CurrBal -= args[0].(float64)
			return c.CurrBal, nil
		}),
		ode.Method("RaiseLimit", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.CredLim += args[0].(float64)
			return nil, nil
		}),
		ode.Method("BlackMark", func(ctx *ode.Ctx, self any, args []any) (any, error) {
			c := self.(*CredCard)
			c.BlackMarks = append(c.BlackMarks, args[0].(string))
			return nil, nil
		}),
		ode.Events("after Buy", "after PayBill", "BigBuy"),
		ode.Mask("OverLimit", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > c.CredLim, nil
		}),
		ode.Mask("MoreCred", func(ctx *ode.Ctx, self any, act *ode.Activation) (bool, error) {
			c := self.(*CredCard)
			return c.CurrBal > 0.8*c.CredLim && c.GoodHist, nil
		}),
		ode.Trigger("DenyCredit", "after Buy & OverLimit",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				if _, err := ctx.Invoke(ctx.Self(), "BlackMark", "Over Limit"); err != nil {
					return err
				}
				ctx.TAbort()
				return nil
			},
			ode.Perpetual()),
		ode.Trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
			func(ctx *ode.Ctx, self any, act *ode.Activation) error {
				_, err := ctx.Invoke(ctx.Self(), "RaiseLimit", act.ArgFloat(0))
				return err
			}),
	)
}

func main() {
	log.SetFlags(0)
	dbPath := flag.String("db", "ode-server.eos", "database file (disk store)")
	addr := flag.String("addr", "127.0.0.1:7047", "listen address")
	mem := flag.Bool("mem", false, "use the main-memory store instead of disk")
	maxReq := flag.Int("max-request", server.DefaultMaxRequestBytes, "per-request size cap in bytes")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle longer than this (0 disables)")
	drain := flag.Duration("drain-timeout", 5*time.Second, "shutdown grace period for in-flight requests")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /traces, /debug/vars, /debug/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")
	traceRate := flag.Uint64("trace-rate", 0, "record one of every n postings as a firing trace (0 disables)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the primary ode-server at this address (disk store only)")
	syncTimeout := flag.Duration("sync-timeout", 30*time.Second, "replica mode: how long to wait for the initial catch-up")
	readyLag := flag.Uint64("ready-lag", 1<<20, "replica mode: /readyz reports 503 while replication lag exceeds this many bytes (0 disables the check)")
	verifyEvery := flag.Duration("verify-every", 0, "replica mode: run a standing anti-entropy audit against the primary at this interval (0 disables)")
	autoRepair := flag.Bool("auto-repair", false, "replica mode: let the standing audit repair confirmed divergence in place")
	protocol := flag.String("protocol", "both", `wire protocols to accept: "both" (JSON + ODE2 binary upgrade) or "json"`)
	shardPeers := flag.String("shard-peers", "", "comma-separated listen addresses of every shard in ring order (enables shard mode; docs/SHARDING.md)")
	shardIndex := flag.Int("shard-index", -1, "this shard's index into -shard-peers")
	shardVnodes := flag.Int("shard-vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
	flag.Parse()

	opts := server.Options{
		MaxRequestBytes: *maxReq,
		IdleTimeout:     *idle,
		DrainTimeout:    *drain,
	}
	switch *protocol {
	case "both":
	case "json":
		opts.DisableBinary = true
	default:
		log.Fatalf(`-protocol must be "both" or "json", got %q`, *protocol)
	}

	var db *ode.Database
	var err error
	var stopShard func()
	health := obs.NewHealth()
	switch {
	case *shardPeers != "":
		addrs := strings.Split(*shardPeers, ",")
		self := *shardIndex
		if self < 0 || self >= len(addrs) {
			log.Fatalf("-shard-index %d out of range for %d peers", self, len(addrs))
		}
		if *replicaOf != "" {
			log.Fatal("-shard-peers and -replica-of are mutually exclusive")
		}
		ring, err := shard.NewRing(len(addrs), *shardVnodes)
		if err != nil {
			log.Fatal(err)
		}
		// The OID filter must be installed before any user allocation so
		// this shard only ever mints OIDs it owns on the ring.
		var store interface {
			SetOIDFilter(func(uint64) bool)
		}
		var cdb *core.Database
		if *mem {
			m := dali.New()
			store = m
			cdb, err = core.NewDatabase(m)
		} else {
			var m *eos.Manager
			m, err = eos.Open(*dbPath, eos.Options{})
			if err == nil {
				store = m
				cdb, err = core.NewDatabase(m)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		store.SetOIDFilter(ring.OIDFilter(self))
		db = cdb
		if err := db.Register(credCardClass()); err != nil {
			log.Fatal(err)
		}
		if err := cdb.EnableSharding(ring.OIDFilter(self)); err != nil {
			log.Fatal(err)
		}
		fwd, err := shard.NewForwarder(cdb, ring, shard.ForwarderOptions{Self: self, Addrs: addrs})
		if err != nil {
			log.Fatal(err)
		}
		go fwd.Run()
		stopShard = fwd.Stop
		opts.ExtraOps = shard.Ops(cdb, ring, self, addrs)
		log.Printf("shard %d of %d (peers %s)", self, len(addrs), *shardPeers)
	case *replicaOf != "":
		// Replica: sync the store from the primary BEFORE building the
		// database layer, so no local write races the stream; all the
		// catalog and trigger state arrives replicated.
		if *mem {
			log.Fatal("-replica-of requires the disk store (replication ships the WAL)")
		}
		store, err := eos.Open(*dbPath, eos.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := repl.NewReplica(*replicaOf, store, repl.ReplicaOptions{PosPath: *dbPath + ".replpos"})
		if err != nil {
			log.Fatal(err)
		}
		rep.Start()
		log.Printf("syncing from primary %s ...", *replicaOf)
		if err := rep.WaitCaughtUp(*syncTimeout); err != nil {
			log.Fatal(err)
		}
		cdb, err := core.NewDatabase(store)
		if err != nil {
			log.Fatal(err)
		}
		db = cdb
		if err := db.Register(credCardClass()); err != nil {
			log.Fatal(err)
		}
		rep.AttachDatabase(cdb)
		rep.RegisterMetrics(db.Observability())
		opts.PrimaryAddr = *replicaOf
		opts.ExtraOps = map[string]func(*server.Request) *server.Response{
			repl.OpStatus: func(*server.Request) *server.Response {
				return &server.Response{OK: true, Result: rep.Status()}
			},
			repl.OpPromote: func(*server.Request) *server.Response {
				rep.Promote()
				// A primary is ready by definition; drop the lag gate.
				health.SetReadiness("repl_lag", nil)
				log.Println("promoted: now accepting writes")
				return &server.Response{OK: true, Result: rep.Status()}
			},
			repl.OpVerify: func(req *server.Request) *server.Response {
				vopts := repl.VerifyOptions{Repair: req.Repair}
				if req.Class != "" {
					// Scope the audit to one class: the name resolves to the
					// same catalog ID on both sides (the catalog replicates).
					bc, ok := cdb.ClassOf(req.Class)
					if !ok {
						return &server.Response{Error: fmt.Sprintf("verify: unknown class %q", req.Class)}
					}
					vopts.Class = bc.ID
				}
				report, err := rep.Verify(vopts)
				if err != nil {
					return &server.Response{Error: err.Error(), Result: report}
				}
				return &server.Response{OK: true, Result: report}
			},
		}
		if *verifyEvery > 0 {
			go func() {
				for range time.Tick(*verifyEvery) {
					report, err := rep.Verify(repl.VerifyOptions{Repair: *autoRepair})
					switch {
					case err != nil:
						log.Printf("anti-entropy audit: %v (report %+v)", err, report)
					case len(report.Repaired) > 0:
						log.Printf("anti-entropy audit: repaired %d diverged objects %v", len(report.Repaired), report.Repaired)
					}
				}
			}()
		}
		if lagMax := *readyLag; lagMax > 0 {
			health.SetReadiness("repl_lag", func() error {
				st := rep.Status()
				if !st.Promoted && st.LagBytes > lagMax {
					return fmt.Errorf("replication lag %d bytes exceeds %d", st.LagBytes, lagMax)
				}
				return nil
			})
		}
		log.Printf("replica of %s: caught up, serving reads (lag %d bytes)", *replicaOf, rep.Status().LagBytes)
	case *mem:
		if db, err = ode.OpenMemory(); err != nil {
			log.Fatal(err)
		}
		if err := db.Register(credCardClass()); err != nil {
			log.Fatal(err)
		}
	default:
		if db, err = ode.OpenDisk(*dbPath); err != nil {
			log.Fatal(err)
		}
		if err := db.Register(credCardClass()); err != nil {
			log.Fatal(err)
		}
		// A disk primary always serves the replication stream: replicas
		// subscribe with {"op":"repl.subscribe","lsn":N}.
		if eosStore, ok := db.Store().(*eos.Manager); ok {
			hub := repl.NewHub(eosStore, repl.HubOptions{})
			hub.RegisterMetrics(db.Observability())
			defer hub.Close()
			opts.StreamOps = map[string]server.StreamHandler{
				repl.OpSubscribe: hub.HandleSubscribe,
				repl.OpRecon:     hub.HandleRecon,
			}
		}
	}
	defer db.Close()

	db.Tracer().SetRate(*traceRate)
	if *obsAddr != "" {
		bound, err := obs.Serve(*obsAddr, db.Observability(), db.Tracer(), health)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("observability endpoint on http://%s (metrics, traces, flight, healthz, readyz, expvar, pprof)", bound)
	}

	srv := server.NewWithOptions(dbCore(db), opts)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ode-server listening on %s (db: %s, protocols: %s)", bound, storeName(*mem, *dbPath), protoName(opts.DisableBinary))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("shutting down")
	srv.Close()
	if stopShard != nil {
		stopShard()
	}
}

// dbCore unwraps the facade alias (ode.Database = core.Database).
func dbCore(db *ode.Database) *core.Database { return db }

func storeName(mem bool, path string) string {
	if mem {
		return "main-memory (dali)"
	}
	return path
}

func protoName(jsonOnly bool) string {
	if jsonOnly {
		return "json"
	}
	return "json+binary"
}
