// Command ode-bench runs the full reproduction experiment suite E1–E25
// (see DESIGN.md for the catalogue and EXPERIMENTS.md for recorded
// results) and prints one paper-shaped table per experiment, followed by
// a pass/fail summary against the paper's predicted shapes.
//
// Usage:
//
//	ode-bench [-quick] [-only E5,E8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ode/internal/experiments"
)

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "reduced iteration counts")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E2,E5); empty runs all")
	flag.Parse()

	r := &experiments.Runner{
		W:   os.Stdout,
		Cfg: experiments.Config{Quick: *quick},
	}
	if *only == "" {
		results := r.RunAll()
		for _, res := range results {
			if !res.Passed {
				os.Exit(1)
			}
		}
		return
	}

	fns := map[string]func() experiments.Result{
		"E1": r.E1, "E2": r.E2, "E3": r.E3, "E4": r.E4, "E5": r.E5,
		"E6": r.E6, "E7": r.E7, "E8": r.E8, "E9": r.E9, "E10": r.E10,
		"E11": r.E11, "E12": r.E12, "E13": r.E13, "E14": r.E14, "E15": r.E15,
		"E16": r.E16, "E17": r.E17, "E19": r.E19, "E20": r.E20, "E21": r.E21,
		"E22": r.E22, "E23": r.E23, "E24": r.E24, "E25": r.E25,
	}
	failed := false
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		fn, ok := fns[id]
		if !ok {
			log.Fatalf("unknown experiment %q (valid: E1..E17, E19..E25)", id)
		}
		res := fn()
		verdict := "ok"
		if !res.Passed {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("-> %s %s: %s\n\n", res.ID, verdict, res.Summary)
	}
	if failed {
		os.Exit(1)
	}
}
