// Package ode is a Go reproduction of the Ode active database: the
// trigger semantics and implementation described in
//
//	D. Lieuwen, N. Gehani, R. Arlein.
//	"The Ode Active Database: Trigger Semantics and Implementation."
//	ICDE 1996.
//
// Ode triggers are event-action pairs attached to persistent objects:
//
//	trigger Name(params) : [perpetual] event-expression ==> action
//
// The event expression is a composite event over the basic events a class
// declares — before/after member-function events, user-defined events,
// and the transaction events before-tcomplete / before-tabort — built
// with sequence (","), union ("||"), repetition ("*"), masks ("&"),
// relative(...), and the "^" anchor. Composite events are detected by
// compiling the expression into an extended finite state machine whose
// mask states evaluate predicates and advance on True/False pseudo-events
// (paper §5.1, Figure 1). Trigger state is persistent and found via an
// object→trigger hash index, so composite events are global: a pattern
// armed by one application fires in another (§7).
//
// # Quick start
//
//	db, err := ode.OpenMemory()                     // or ode.OpenDisk(path)
//	cls := ode.MustClass("CredCard",
//	    ode.Factory(func() any { return new(CredCard) }),
//	    ode.Method("Buy", buy),
//	    ode.Method("PayBill", payBill),
//	    ode.Events("after Buy", "after PayBill", "BigBuy"),
//	    ode.Mask("OverLimit", overLimit),
//	    ode.Trigger("DenyCredit", "after Buy & OverLimit", deny, ode.Perpetual()),
//	)
//	err = db.Register(cls)
//
//	tx := db.Begin()
//	card, err := db.Create(tx, "CredCard", &CredCard{CredLim: 5000})
//	id, err := db.Activate(tx, card, "DenyCredit")
//	err = tx.Commit()
//
//	tx = db.Begin()
//	_, err = db.Invoke(tx, card, "Buy", 9000.0)  // posts "after Buy"
//	err = tx.Commit()                            // ErrAborted: trigger fired tabort
//
// Methods invoked through a persistent Ref (Database.Invoke) post their
// declared events; calling the Go method directly on a volatile value
// involves no trigger machinery at all — the paper's design goals 3–4.
//
// The package is a facade over internal/core (the trigger engine) and the
// substrates it reproduces: internal/storage/eos (disk, EOS analog),
// internal/storage/dali (main memory, Dali analog), internal/wal,
// internal/lock, internal/txn, internal/obj, internal/event,
// internal/eventexpr and internal/fsm. See DESIGN.md for the inventory
// and EXPERIMENTS.md for the reproduced results.
package ode

import (
	"fmt"

	"ode/internal/core"
	"ode/internal/storage"
	"ode/internal/storage/dali"
	"ode/internal/storage/eos"
	"ode/internal/txn"
)

// Core types, re-exported.
type (
	// Database is an Ode database: storage manager + object manager +
	// trigger run-time.
	Database = core.Database
	// Class is a validated class definition (the O++ class declaration).
	Class = core.Class
	// Ref is a persistent pointer.
	Ref = core.Ref
	// TriggerID identifies one trigger activation.
	TriggerID = core.TriggerID
	// Ctx is the execution context passed to methods, masks and actions.
	Ctx = core.Ctx
	// Activation carries a trigger's identity and activation arguments.
	Activation = core.Activation
	// Coupling is an ECA coupling mode.
	Coupling = core.Coupling
	// Option configures NewClass.
	Option = core.Option
	// TriggerOption configures a trigger declaration.
	TriggerOption = core.TriggerOption
	// MethodFunc is a member-function body.
	MethodFunc = core.MethodFunc
	// MaskFunc is a mask predicate.
	MaskFunc = core.MaskFunc
	// ActionFunc is a trigger action.
	ActionFunc = core.ActionFunc
	// Txn is a transaction handle.
	Txn = txn.Txn
	// Stats counts trigger-system activity.
	Stats = core.Stats
	// LocalTriggerID identifies a transaction-local rule activation
	// (the paper's §8 "local rules" extension; see
	// Database.ActivateLocal).
	LocalTriggerID = core.LocalTriggerID
	// Timers schedules time-driven event postings (the §8 "timed
	// triggers" extension).
	Timers = core.Timers
	// TimerID cancels a scheduled timer.
	TimerID = core.TimerID
)

// NewTimers returns a timer scheduler for db — the §8 "timed triggers"
// extension: the passage of (virtual) time produces declared user events,
// each posted in its own transaction.
func NewTimers(db *Database) *Timers { return core.NewTimers(db) }

// Coupling modes (§4.2).
const (
	// Immediate fires inside the detecting transaction, right after
	// detection.
	Immediate = core.Immediate
	// Deferred ("end") fires right before the detecting transaction
	// commits.
	Deferred = core.Deferred
	// Dependent fires in a separate transaction that runs only if the
	// detecting transaction commits.
	Dependent = core.Dependent
	// Independent ("!dependent") fires in a separate transaction even if
	// the detecting transaction aborts.
	Independent = core.Independent
)

// Errors, re-exported.
var (
	// ErrAborted is returned by Txn.Commit for doomed (tabort) and
	// deadlock-victim transactions.
	ErrAborted = txn.ErrAborted
	// ErrNotFound reports access to a missing object.
	ErrNotFound = storage.ErrNotFound
	// ErrReadOnly reports a mutation attempted on a read replica; retry
	// it against the primary.
	ErrReadOnly = core.ErrReadOnly
	// ErrSnapshotWrite reports a write (or exclusive lock) attempted in a
	// snapshot transaction (Database.BeginSnapshot); rerun the work in a
	// regular transaction.
	ErrSnapshotWrite = core.ErrSnapshotWrite
	// ErrNoVersions reports that the storage manager keeps no version
	// chains, so snapshot transactions are unavailable.
	ErrNoVersions = core.ErrNoVersions
	// ErrUnknownClass, ErrUnknownMethod, ErrUnknownTrigger and
	// ErrUnknownEvent report schema misuse.
	ErrUnknownClass   = core.ErrUnknownClass
	ErrUnknownMethod  = core.ErrUnknownMethod
	ErrUnknownTrigger = core.ErrUnknownTrigger
	ErrUnknownEvent   = core.ErrUnknownEvent
)

// NewClass builds and validates a class definition.
func NewClass(name string, opts ...Option) (*Class, error) { return core.NewClass(name, opts...) }

// MustClass is NewClass that panics on error.
func MustClass(name string, opts ...Option) *Class { return core.MustClass(name, opts...) }

// Factory sets the constructor for the class's Go representation.
func Factory(fn func() any) Option { return core.Factory(fn) }

// Extends declares base classes (single or multiple inheritance).
func Extends(parents ...*Class) Option { return core.Extends(parents...) }

// Method declares a mutating member function.
func Method(name string, fn MethodFunc) Option { return core.Method(name, fn) }

// ReadOnlyMethod declares a const member function.
func ReadOnlyMethod(name string, fn MethodFunc) Option { return core.ReadOnlyMethod(name, fn) }

// Events declares the class's events ("after Buy", "BigBuy",
// "before tcomplete", ...).
func Events(decls ...string) Option { return core.Events(decls...) }

// Mask registers a named mask predicate.
func Mask(name string, fn MaskFunc) Option { return core.Mask(name, fn) }

// Trigger declares a trigger with its event expression and action.
func Trigger(name, expr string, action ActionFunc, opts ...TriggerOption) Option {
	return core.Trigger(name, expr, action, opts...)
}

// Perpetual marks a trigger as remaining active after it fires.
func Perpetual() TriggerOption { return core.Perpetual() }

// WithCoupling selects a trigger's coupling mode.
func WithCoupling(c Coupling) TriggerOption { return core.WithCoupling(c) }

// OpenDisk opens (creating if needed) a disk-based database at path — the
// EOS-backed configuration (§5.6). The write-ahead log lives at
// path+".wal"; crash recovery runs during open.
func OpenDisk(path string) (*Database, error) {
	store, err := eos.Open(path, eos.Options{})
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	return db, nil
}

// OpenMemory opens a main-memory database — the MM-Ode/Dali
// configuration (§5.6). Contents vanish when the process exits.
func OpenMemory() (*Database, error) {
	return core.NewDatabase(dali.New())
}

// OpenMemoryFile opens a main-memory database that loads from and
// checkpoints to a snapshot file (Database.Store().Checkpoint()).
func OpenMemoryFile(path string) (*Database, error) {
	store, err := dali.Open(path)
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	return db, nil
}

// Get loads an object and asserts its concrete type.
func Get[T any](db *Database, tx *Txn, ref Ref) (T, error) {
	var zero T
	v, err := db.Get(tx, ref)
	if err != nil {
		return zero, err
	}
	typed, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("ode: object %v is %T, not %T", ref, v, zero)
	}
	return typed, nil
}

// RefFromOID rebuilds a Ref from a raw object identifier (for handles
// exchanged between processes).
func RefFromOID(oid uint64) Ref { return core.RefFromOID(storage.OID(oid)) }
