package ode_test

import (
	"os"
	"strings"
	"testing"

	"ode/internal/core"
	"ode/internal/server"
	"ode/internal/shard"
	"ode/internal/storage/dali"
)

// TestShardingDocCoverage enforces the contract stated in
// docs/SHARDING.md: the shard ops, the fleet CLI flags, and every
// shard.* metric the engine, the forwarder, and the router register
// must appear verbatim in the sharding / observability docs. Adding a
// metric or renaming a flag without documenting it fails CI (the
// `shard` job runs this test by name).
func TestShardingDocCoverage(t *testing.T) {
	read := func(path string) string {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing: %v", path, err)
		}
		return string(raw)
	}
	shardDoc := read("docs/SHARDING.md")
	protoDoc := read("docs/PROTOCOL.md")
	obsDoc := read("docs/OBSERVABILITY.md")

	// The shard ops must be specified in both the protocol reference
	// and the sharding spec.
	for _, op := range []string{"shard.ingest", "shard.status", "trace.rate", "trace.chain"} {
		for path, doc := range map[string]string{"docs/SHARDING.md": shardDoc, "docs/PROTOCOL.md": protoDoc} {
			if !strings.Contains(doc, "`"+op+"`") {
				t.Errorf("op %q is not documented in %s", op, path)
			}
		}
	}

	// The fleet CLI surface: a reader must be able to boot a fleet from
	// the spec alone.
	for _, flag := range []string{"-shard-peers", "-shard-index", "-shard-vnodes", "-shards", "-stream-shard", "-obs-addr"} {
		if !strings.Contains(shardDoc, flag) {
			t.Errorf("flag %q is not documented in docs/SHARDING.md", flag)
		}
	}
	for _, term := range []string{"E24", "BENCH_shard.json", "exactly once", "watermark"} {
		if !strings.Contains(shardDoc, term) {
			t.Errorf("docs/SHARDING.md does not mention %q", term)
		}
	}

	// Every shard.* metric, collected from a live one-shard fleet:
	// engine capture/ingest metrics and forwarder metrics land on the
	// database registry, routing metrics on the router's own.
	ring, err := shard.NewRing(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.NewDatabase(dali.New())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.EnableSharding(ring.OIDFilter(0)); err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 1)
	srv := server.NewWithOptions(db, server.Options{ExtraOps: shard.Ops(db, ring, 0, addrs)})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addrs[0] = addr
	if _, err := shard.NewForwarder(db, ring, shard.ForwarderOptions{Self: 0, Addrs: addrs}); err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter(ring, shard.RouterOptions{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	names := db.Observability().Names()
	names = append(names, rt.Observability().Names()...)
	saw, sawRouter := 0, 0
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "shard."):
			saw++
		case strings.HasPrefix(name, "router."):
			sawRouter++
		default:
			continue
		}
		if !strings.Contains(obsDoc, "`"+name+"`") {
			t.Errorf("fleet metric %q is not documented in docs/OBSERVABILITY.md", name)
		}
	}
	if saw == 0 {
		t.Fatal("no shard.* metrics registered; coverage check is vacuous")
	}
	if sawRouter == 0 {
		t.Fatal("no router.* metrics registered; coverage check is vacuous")
	}
}
